//! Temporal tracking of mobile networks.
//!
//! The static algorithm extends to mobility by sequential Bayesian
//! filtering: each time step's posterior, convolved with a motion model,
//! becomes the next step's *pre-knowledge*. [`TrackingLocalizer`] wraps a
//! [`BnlLocalizer`] and maintains that recursion:
//!
//! - step 0: localize with the configured initial prior;
//! - step t: per-node Gaussian priors centered on the previous estimates
//!   with σ = (previous belief spread) + (expected motion per step) — an
//!   intentionally conservative inflation, since loopy-BP posteriors
//!   understate their own uncertainty.
//!
//! The payoff is *budget*, not just accuracy: with a temporal prior, two or
//! three BP iterations per step suffice, where a memoryless localizer needs
//! its full flooding schedule from scratch every step (experiment F14).

use crate::localizer::BnlLocalizer;
use crate::prior::PriorModel;
use crate::result::{LocalizationResult, Localizer};
use wsnloc_geom::Vec2;
use wsnloc_net::Network;

/// Sequential Bayesian tracker over network snapshots.
#[derive(Debug, Clone)]
pub struct TrackingLocalizer {
    /// The per-step inference engine (its `prior` field is used only for
    /// the first step).
    pub engine: BnlLocalizer,
    /// Expected per-step displacement (meters): `max_speed · dt` of the
    /// mobility model, inflating the temporal prior.
    pub motion_per_step: f64,
    /// Belief state carried between steps.
    state: Option<TrackState>,
}

#[derive(Debug, Clone)]
struct TrackState {
    means: Vec<Option<Vec2>>,
    sigmas: Vec<f64>,
}

impl TrackingLocalizer {
    /// Creates a tracker. `engine.prior` supplies the step-0 prior.
    pub fn new(engine: BnlLocalizer, motion_per_step: f64) -> Self {
        TrackingLocalizer {
            engine,
            motion_per_step,
            state: None,
        }
    }

    /// Resets to the initial (step-0) prior.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Processes one snapshot and returns its localization result, carrying
    /// the posterior forward as the next step's prior.
    pub fn step(&mut self, network: &Network, seed: u64) -> LocalizationResult {
        let mut engine = self.engine.clone();
        if let Some(state) = &self.state {
            assert_eq!(
                state.means.len(),
                network.len(),
                "network size changed between tracking steps"
            );
            engine.prior = PriorModel::PerNodeGaussian {
                means: state.means.clone(),
                sigmas: state.sigmas.clone(),
            };
        }
        let result = engine.localize(network, seed);

        // Posterior → next prior. Loopy BP posteriors are overconfident
        // (evidence is double-counted around loops), so the carried sigma is
        // the *sum* of spread and motion rather than their RSS — a
        // conservative inflation that keeps the tracker self-correcting.
        let means = result.estimates.clone();
        let sigmas: Vec<f64> = (0..network.len())
            .map(|id| {
                let spread = result.uncertainty[id].unwrap_or(0.0);
                spread + self.motion_per_step
            })
            .collect();
        self.state = Some(TrackState { means, sigmas });
        result
    }
}

impl Localizer for TrackingLocalizer {
    fn name(&self) -> String {
        format!("Track({})", self.engine.name())
    }

    /// Stateless single-shot interface: equivalent to a fresh step 0.
    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult {
        self.engine.localize(network, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::stats;
    use wsnloc_geom::{Aabb, Shape};
    use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};
    use wsnloc_net::{GroundTruth, RadioModel, RangingModel};

    fn world(seed: u64, speed: f64) -> MobileWorld {
        MobileWorld::new(
            Shape::Rect(Aabb::from_size(500.0, 500.0)),
            50,
            8,
            RadioModel::UnitDisk { range: 160.0 },
            RangingModel::Multiplicative { factor: 0.08 },
            RandomWaypoint {
                min_speed: speed,
                max_speed: speed,
                pause: 0.0,
            },
            1.0,
            seed,
        )
    }

    /// A deliberately tight per-step budget: 2 BP iterations. This is the
    /// regime tracking is for — a memoryless run cannot flood anchor
    /// information across the network in 2 iterations, a warm-started one
    /// doesn't need to.
    fn engine() -> BnlLocalizer {
        BnlLocalizer::particle(150)
            .with_max_iterations(2)
            .with_tolerance(0.0)
    }

    fn step_error(result: &LocalizationResult, net: &Network, truth: &[Vec2]) -> f64 {
        let gt = GroundTruth::from_positions(truth.to_vec());
        let errs: Vec<f64> = result
            .errors_for(&gt, Some(net))
            .into_iter()
            .flatten()
            .collect();
        stats::mean(&errs).unwrap_or(f64::NAN)
    }

    #[test]
    fn tracking_beats_memoryless_on_later_steps() {
        let mut w = world(1, 8.0);
        let mut tracker = TrackingLocalizer::new(engine(), 10.0);
        let memoryless = engine();
        let mut tracked = Vec::new();
        let mut fresh = Vec::new();
        for t in 0..6u64 {
            let net = w.step();
            let truth = w.positions().to_vec();
            tracked.push(step_error(&tracker.step(&net, t), &net, &truth));
            fresh.push(step_error(&memoryless.localize(&net, t), &net, &truth));
        }
        // After warm-up, the temporal prior must dominate under the tight
        // iteration budget.
        let tracked_tail: f64 = tracked[2..].iter().sum();
        let fresh_tail: f64 = fresh[2..].iter().sum();
        assert!(
            tracked_tail < fresh_tail,
            "tracking {tracked_tail:.1} should beat memoryless {fresh_tail:.1} (per-step: {tracked:?} vs {fresh:?})"
        );
    }

    #[test]
    fn tracker_error_stays_bounded_over_time() {
        let mut w = world(2, 12.0);
        let mut tracker = TrackingLocalizer::new(engine(), 15.0);
        let mut errors = Vec::new();
        for t in 0..8u64 {
            let net = w.step();
            let truth = w.positions().to_vec();
            errors.push(step_error(&tracker.step(&net, t), &net, &truth));
        }
        // No divergence: late errors comparable to early ones.
        let early = errors[1];
        let late = errors[7];
        assert!(late < 3.0 * early + 30.0, "tracker diverged: {errors:?}");
    }

    #[test]
    fn reset_restores_initial_prior() {
        let mut w = world(3, 5.0);
        let net = w.step();
        let mut tracker = TrackingLocalizer::new(engine(), 6.0);
        let first = tracker.step(&net, 0);
        tracker.reset();
        let again = tracker.step(&net, 0);
        assert_eq!(first.estimates, again.estimates);
    }

    #[test]
    fn name_reflects_engine() {
        let tracker = TrackingLocalizer::new(engine(), 5.0);
        assert_eq!(tracker.name(), "Track(NBP/particle)");
    }
}
