//! # wsnloc
//!
//! Cooperative localization with pre-knowledge using Bayesian networks for
//! wireless sensor networks — a from-scratch Rust reproduction of the system
//! described by Lo, Wu & Chung (ICPP 2007).
//!
//! ## The algorithm (BNL-PK)
//!
//! Each unknown node's position is a variable in a Bayesian network whose
//! factors are (a) *pre-knowledge priors* — what is known about a node's
//! position before any measurement (planned drop points, deployment zones) —
//! and (b) pairwise *measurement likelihoods* between radio neighbors (noisy
//! ranges). Anchors enter as observed variables. Localization is loopy
//! belief propagation on this network, run with either a discretized-grid or
//! a particle (nonparametric) belief representation, both provided by
//! [`wsnloc_bayes`].
//!
//! ## Quick start
//!
//! ```
//! use wsnloc::prelude::*;
//!
//! // Simulate a standard network with drop-point pre-knowledge.
//! let scenario = Scenario::standard_with_preknowledge(100.0);
//! let (network, truth) = scenario.build_trial(0);
//!
//! // Localize with the particle backend and drop-point priors.
//! let localizer = BnlLocalizer::builder(Backend::particle(150).expect("valid backend"))
//!     .prior(PriorModel::DropPoint { sigma: 100.0 })
//!     .max_iterations(8)
//!     .try_build()
//!     .expect("valid configuration");
//! let result = localizer.localize(&network, 0);
//!
//! // Mean error, normalized by the radio range.
//! let errors = result.errors(&truth);
//! let mean: f64 = errors.iter().flatten().sum::<f64>() / errors.iter().flatten().count() as f64;
//! assert!(mean / scenario.nominal_range() < 1.0);
//! ```
//!
//! Modules:
//! - [`prior`] — pre-knowledge models mapped onto unary potentials.
//! - [`adapter`] — measurement/radio models adapted to BP potentials.
//! - [`model`] — [`model::build_mrf`]: network → Bayesian network.
//! - [`localizer`] — the [`BnlLocalizer`] engine and the
//!   [`Localizer`] trait every algorithm in the workspace implements.
//! - [`session`] — [`session::LocalizationSession`]: the streaming
//!   entry point; one BP solve per measurement epoch with posterior
//!   beliefs motion-predicted and carried into the next epoch.
//!   One-shot [`Localizer::localize`] is the single-epoch case.
//! - [`result`] — [`LocalizationResult`] and error computation.
//! - [`crlb`] — the Cramér–Rao lower bound for range-based cooperative
//!   localization with Gaussian priors.
//! - [`obs`] (re-export of `wsnloc_obs`) — convergence telemetry: attach an
//!   [`obs::TraceObserver`] via [`Localizer::localize_with_observer`] to
//!   record per-iteration residuals, communication, timing spans, and
//!   structured events, or stream them to JSONL with [`obs::JsonlSink`].

#![warn(missing_docs)]

pub mod adapter;
pub mod crlb;
pub mod localizer;
pub mod model;
pub mod options;
pub mod prior;
pub mod result;
pub mod session;
pub mod tracking;

pub use localizer::{Backend, BnlLocalizer, BnlLocalizerBuilder, Estimator};
pub use options::{GridOptions, ParticleOptions, ShardPlan};
pub use prior::PriorModel;
pub use result::{LocalizationResult, Localizer};
pub use session::{CarriedBeliefs, LocalizationSession};
pub use tracking::{TrackingLocalizer, TrackingLocalizerBuilder};
pub use wsnloc_bayes::{CoarseToFine, GridPrecision, MotionModel};
pub use wsnloc_obs as obs;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::crlb::crlb_per_node;
    pub use crate::localizer::{Backend, BnlLocalizer, BnlLocalizerBuilder, Estimator};
    pub use crate::options::{GridOptions, ParticleOptions, ShardPlan};
    pub use crate::prior::PriorModel;
    pub use crate::result::{LocalizationResult, Localizer};
    pub use crate::session::{CarriedBeliefs, LocalizationSession};
    pub use crate::tracking::{TrackingLocalizer, TrackingLocalizerBuilder};
    pub use wsnloc_bayes::{
        BpEngine, BpOptions, CoarseToFine, GridPrecision, MotionModel, Schedule, Transport,
        ValidationError,
    };
    pub use wsnloc_geom::{Aabb, Shape, Vec2};
    pub use wsnloc_net::{
        AnchorStrategy, DeathModel, Deployment, DropPolicy, FaultPlan, GroundTruth, LossModel,
        Network, NodeDeath, RadioModel, RangingModel, Scenario,
    };
    pub use wsnloc_obs::{InferenceObserver, JsonlSink, NullObserver, TraceObserver};
}
