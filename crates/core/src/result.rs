//! Localization results and the common algorithm interface.

use wsnloc_geom::Vec2;
use wsnloc_net::accounting::CommStats;
use wsnloc_net::{GroundTruth, Network};
use wsnloc_obs::InferenceObserver;

/// The output of one localization run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalizationResult {
    /// Per-node position estimate. Anchors carry their known position;
    /// `None` marks unknowns the algorithm could not localize (e.g. DV-Hop
    /// nodes that heard fewer than three anchors).
    pub estimates: Vec<Option<Vec2>>,
    /// Per-node scalar uncertainty (RMS belief spread, meters) where the
    /// algorithm produces one.
    pub uncertainty: Vec<Option<f64>>,
    /// Communication cost a distributed execution would have incurred.
    pub comm: CommStats,
    /// Inference iterations executed (1 for one-shot algorithms).
    pub iterations: usize,
    /// Whether iterative inference converged before its iteration cap.
    pub converged: bool,
    /// Wall-clock seconds spent in the algorithm.
    pub elapsed_secs: f64,
}

impl LocalizationResult {
    /// Empty result scaffold for `n` nodes.
    pub fn empty(n: usize) -> Self {
        LocalizationResult {
            estimates: vec![None; n],
            uncertainty: vec![None; n],
            comm: CommStats::default(),
            iterations: 0,
            converged: false,
            elapsed_secs: 0.0,
        }
    }

    /// Per-node localization error against ground truth: `Some(err)` for
    /// localized *unknown* nodes, `None` for anchors and unlocalized nodes.
    pub fn errors(&self, truth: &GroundTruth) -> Vec<Option<f64>> {
        self.errors_for(truth, None)
    }

    /// Like [`LocalizationResult::errors`] but, when `network` is supplied,
    /// anchors are excluded by the network's own labeling rather than by
    /// estimate presence.
    pub fn errors_for(&self, truth: &GroundTruth, network: Option<&Network>) -> Vec<Option<f64>> {
        self.estimates
            .iter()
            .enumerate()
            .map(|(id, est)| {
                if let Some(net) = network {
                    if net.is_anchor(id) {
                        return None;
                    }
                }
                est.map(|e| e.dist(truth.position(id)))
            })
            .collect()
    }

    /// Fraction of nodes in `ids` with an estimate.
    pub fn coverage(&self, ids: impl Iterator<Item = usize>) -> f64 {
        let mut total = 0usize;
        let mut localized = 0usize;
        for id in ids {
            total += 1;
            if self.estimates[id].is_some() {
                localized += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            localized as f64 / total as f64
        }
    }
}

/// The interface every localization algorithm in the workspace implements —
/// the paper's BNL-PK and all baselines alike, so experiments are generic.
pub trait Localizer: Send + Sync {
    /// Short display name used in tables ("BNL-PK", "DV-Hop", …).
    fn name(&self) -> String;

    /// Estimates positions for all nodes of the network. `seed` drives any
    /// internal randomness; the same `(network, seed)` pair must return the
    /// same result.
    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult;

    /// Like [`Localizer::localize`], reporting convergence telemetry into
    /// `observer` along the way. The default implementation ignores the
    /// observer and delegates to `localize` — the right behavior for
    /// one-shot baselines (DV-Hop, MDS, …) that have no iteration structure
    /// to report. Iterative algorithms override this.
    fn localize_with_observer(
        &self,
        network: &Network,
        seed: u64,
        observer: &dyn InferenceObserver,
    ) -> LocalizationResult {
        let _ = observer;
        self.localize(network, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_measure_distance_to_truth() {
        let truth = GroundTruth::from_positions(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(20.0, 0.0),
        ]);
        let mut r = LocalizationResult::empty(3);
        r.estimates[0] = Some(Vec2::new(3.0, 4.0));
        r.estimates[2] = Some(Vec2::new(20.0, 0.0));
        let errs = r.errors(&truth);
        assert_eq!(errs[0], Some(5.0));
        assert_eq!(errs[1], None);
        assert_eq!(errs[2], Some(0.0));
    }

    #[test]
    fn coverage_counts_estimates() {
        let mut r = LocalizationResult::empty(4);
        r.estimates[1] = Some(Vec2::ZERO);
        r.estimates[3] = Some(Vec2::ZERO);
        assert!((r.coverage(0..4) - 0.5).abs() < 1e-12);
        assert!((r.coverage(std::iter::empty()) - 1.0).abs() < 1e-12);
        assert!((r.coverage([1, 3].into_iter()) - 1.0).abs() < 1e-12);
    }
}
