//! Adapters from simulator models to inference potentials.
//!
//! The simulator's [`RangingModel`] is the *generative* truth; inference
//! needs the same density viewed as a function of the hypothesized distance
//! for a fixed observation. [`RangingPotential`] is that view. Because both
//! sides share one [`RangingModel`], the localizer runs in the
//! well-specified-likelihood regime the Bayesian formulation assumes;
//! model-mismatch experiments substitute a different model here on purpose.
//!
//! [`ConnectivityPotential`] is the optional negative-information factor:
//! two nodes that *cannot* hear each other are probably far apart. It is a
//! soft constraint derived from the radio model's connect probability.

use wsnloc_bayes::PairPotential;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_net::{RadioModel, RangingModel};

/// A ranging observation as a pairwise potential.
#[derive(Debug, Clone, Copy)]
pub struct RangingPotential {
    /// The observed distance.
    pub observed: f64,
    /// The noise model the observation was (assumed) drawn from.
    pub model: RangingModel,
}

impl PairPotential for RangingPotential {
    fn log_likelihood(&self, d: f64) -> f64 {
        self.model.log_likelihood(self.observed, d)
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.model.sample_distance(self.observed, rng)
    }

    fn max_distance(&self) -> Option<f64> {
        // 5 sigma beyond the observation, with the noise evaluated at the
        // observation itself (adequate for the mild noise levels swept).
        Some(self.observed + 5.0 * self.model.noise_std(self.observed))
    }

    fn gaussian_range(&self) -> Option<(f64, f64)> {
        // Moment-match every ranging model at the observation point; exact
        // for the additive model, a first-order match for the others.
        Some((self.observed, self.model.noise_std(self.observed)))
    }
}

/// "We are connected" as a soft potential (for radio models with a
/// transition band) or "we are NOT connected" as its complement.
#[derive(Debug, Clone, Copy)]
pub struct ConnectivityPotential {
    /// The radio model.
    pub radio: RadioModel,
    /// `true`: the pair is connected; `false`: the pair is known to be
    /// disconnected (negative information).
    pub connected: bool,
}

impl PairPotential for ConnectivityPotential {
    fn log_likelihood(&self, d: f64) -> f64 {
        let p = self.radio.connect_prob(d);
        let p = if self.connected { p } else { 1.0 - p };
        p.max(1e-12).ln()
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        let r = self.radio.nominal_range();
        if self.connected {
            // Area-uniform within the nominal disk.
            r * rng.f64().sqrt()
        } else {
            // Uniform in the "just out of range" band.
            r * (1.0 + rng.f64())
        }
    }

    fn max_distance(&self) -> Option<f64> {
        if self.connected {
            Some(self.radio.max_range())
        } else {
            None // disconnection is informative at any distance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranging_potential_peaks_at_observation() {
        let p = RangingPotential {
            observed: 80.0,
            model: RangingModel::Multiplicative { factor: 0.1 },
        };
        let peak = p.log_likelihood(80.0);
        assert!(peak > p.log_likelihood(60.0));
        assert!(peak > p.log_likelihood(100.0));
    }

    #[test]
    fn ranging_potential_matches_model_likelihood() {
        let model = RangingModel::AdditiveGaussian { sigma: 4.0 };
        let p = RangingPotential {
            observed: 50.0,
            model,
        };
        for d in [30.0, 50.0, 70.0] {
            assert!((p.log_likelihood(d) - model.log_likelihood(50.0, d)).abs() < 1e-12);
        }
    }

    #[test]
    fn ranging_max_distance_covers_tail() {
        let p = RangingPotential {
            observed: 100.0,
            model: RangingModel::Multiplicative { factor: 0.1 },
        };
        let max = p.max_distance().unwrap();
        assert!((max - 150.0).abs() < 1e-9);
        // Likelihood at the truncation radius is small vs the peak (the
        // multiplicative model widens with hypothesized distance, so the
        // tail decays slower than a fixed-σ Gaussian's 12.5 nats).
        assert!(p.log_likelihood(max) < p.log_likelihood(100.0) - 5.0);
    }

    #[test]
    fn ranging_samples_cluster_near_observation() {
        let p = RangingPotential {
            observed: 60.0,
            model: RangingModel::Multiplicative { factor: 0.05 },
        };
        let mut rng = Xoshiro256pp::seed_from(4);
        let mean: f64 = (0..10_000)
            .map(|_| p.sample_distance(&mut rng))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 60.0).abs() < 1.0);
    }

    #[test]
    fn connectivity_positive_prefers_close() {
        let p = ConnectivityPotential {
            radio: RadioModel::QuasiUdg {
                inner: 80.0,
                outer: 120.0,
            },
            connected: true,
        };
        assert!(p.log_likelihood(50.0) > p.log_likelihood(110.0));
        assert!(p.log_likelihood(110.0) > p.log_likelihood(130.0));
        assert_eq!(p.max_distance(), Some(120.0));
    }

    #[test]
    fn connectivity_negative_prefers_far() {
        let p = ConnectivityPotential {
            radio: RadioModel::QuasiUdg {
                inner: 80.0,
                outer: 120.0,
            },
            connected: false,
        };
        assert!(p.log_likelihood(130.0) > p.log_likelihood(100.0));
        assert!(p.log_likelihood(100.0) > p.log_likelihood(50.0));
        assert_eq!(p.max_distance(), None);
    }

    #[test]
    fn connectivity_samples_respect_side() {
        let radio = RadioModel::UnitDisk { range: 100.0 };
        let mut rng = Xoshiro256pp::seed_from(5);
        let inside = ConnectivityPotential {
            radio,
            connected: true,
        };
        let outside = ConnectivityPotential {
            radio,
            connected: false,
        };
        for _ in 0..1000 {
            assert!(inside.sample_distance(&mut rng) <= 100.0);
            assert!(outside.sample_distance(&mut rng) >= 100.0);
        }
    }
}
