//! Trace serialization: recorded runs → JSON Lines.
//!
//! The encoder is hand-rolled (the build environment has no serde
//! registry access); it emits one self-describing JSON object per line.
//! Schema (stable, documented in the README "Observability" section):
//!
//! ```text
//! {"type":"run_start","backend":..,"nodes":..,"free":..,"edges":..,
//!  "max_iterations":..,"tolerance":..,"damping":..,"schedule":..,
//!  "message_bytes":..,"seed":..}
//! {"type":"iteration","iter":..,"max_shift":..,"messages":..,"bytes":..,
//!  "damping":..,"schedule":..,"secs":..,"max_residual":..,
//!  "mean_residual":..,"residuals":[{"node":..,"residual":..,"kl":..},..]}
//! {"type":"span","span":"model_build|prior_init|message_passing|estimate_extract","secs":..}
//! {"type":"event","event":"map_fallback_to_mmse","backend":..}
//! {"type":"event","event":"grid_uniform_fallback","edge":..,"stage":"kernel|point"}
//! {"type":"event","event":"thread_pool_fallback","requested":..,"error":..}
//! {"type":"event","event":"discrete_query","method":..,"variables":..,"samples":..}
//! {"type":"event","event":"epoch_advanced","tenant":..,"epoch":..}
//! {"type":"event","event":"tenant_shed","tenant":..,"epoch":..}
//! {"type":"event","event":"note","message":..}
//! {"type":"run_end","iterations":..,"converged":..,"messages":..,"bytes":..}
//! ```
//!
//! Non-finite floats serialize as `null` (JSON has no NaN/Infinity).
//! Records of one run appear contiguously, `run_start` first, `run_end`
//! last, so a reader can replay runs by splitting on `run_start`.

use crate::observer::ObsEvent;
use crate::trace::RunTrace;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Where serialized trace lines go.
pub trait TraceSink {
    /// Accepts one complete JSON line (no trailing newline).
    fn write_line(&mut self, line: &str) -> io::Result<()>;

    /// Flushes any buffered lines.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A [`TraceSink`] writing newline-delimited JSON to any [`Write`].
///
/// The sink flushes on [`finish`](JsonlSink::finish) and again on drop,
/// so a run that panics mid-trace still leaves every completed line on
/// disk — each line is written whole, so the worst a crash can truncate
/// is the line in flight, never earlier records.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    // `None` only after `finish` has consumed the writer.
    out: Option<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a buffered file sink.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            out: Some(BufWriter::new(File::create(path)?)),
        })
    }
}

fn finished_err() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "sink already finished")
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out: Some(out) }
    }

    /// Flushes and consumes the sink, surfacing any buffered I/O error
    /// that a plain drop would have to swallow.
    pub fn finish(mut self) -> io::Result<()> {
        match self.out.take() {
            Some(mut out) => out.flush(),
            None => Ok(()),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let out = self.out.as_mut().ok_or_else(finished_err)?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.as_mut().ok_or_else(finished_err)?.flush()
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best effort: unwinding out of a panicked run must not lose
        // buffered lines; errors here have nowhere to go.
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

/// A [`TraceSink`] collecting lines in memory — for tests and in-process
/// consumers.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected JSON lines, in write order.
    pub lines: Vec<String>,
}

impl VecSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.lines.push(line.to_owned());
        Ok(())
    }
}

/// Appends a JSON string literal (quoted, escaped) to `buf`.
pub(crate) fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Appends a JSON number to `buf`; non-finite values become `null`.
fn push_json_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// Like [`push_json_f64`] but `None` also becomes `null`.
fn push_json_opt_f64(buf: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_json_f64(buf, v),
        None => buf.push_str("null"),
    }
}

fn run_start_line(run: &RunTrace) -> String {
    let i = &run.info;
    let mut s = String::from("{\"type\":\"run_start\",\"backend\":");
    push_json_str(&mut s, i.backend);
    let _ = write!(
        s,
        ",\"nodes\":{},\"free\":{},\"edges\":{},\"max_iterations\":{}",
        i.nodes, i.free, i.edges, i.max_iterations
    );
    s.push_str(",\"tolerance\":");
    push_json_f64(&mut s, i.tolerance);
    s.push_str(",\"damping\":");
    push_json_f64(&mut s, i.damping);
    s.push_str(",\"schedule\":");
    push_json_str(&mut s, i.schedule);
    let _ = write!(
        s,
        ",\"message_bytes\":{},\"seed\":{}}}",
        i.message_bytes, i.seed
    );
    s
}

fn event_line(event: &ObsEvent) -> String {
    let mut s = String::from("{\"type\":\"event\",\"event\":");
    match event {
        ObsEvent::MapFallbackToMmse { backend } => {
            push_json_str(&mut s, "map_fallback_to_mmse");
            s.push_str(",\"backend\":");
            push_json_str(&mut s, backend);
        }
        ObsEvent::GridUniformFallback { edge, stage } => {
            push_json_str(&mut s, "grid_uniform_fallback");
            let _ = write!(s, ",\"edge\":{edge},\"stage\":");
            push_json_str(&mut s, stage);
        }
        ObsEvent::ThreadPoolFallback { requested, error } => {
            push_json_str(&mut s, "thread_pool_fallback");
            let _ = write!(s, ",\"requested\":{requested},\"error\":");
            push_json_str(&mut s, error);
        }
        ObsEvent::MessageDropped { iteration, count } => {
            push_json_str(&mut s, "message_dropped");
            let _ = write!(s, ",\"iteration\":{iteration},\"count\":{count}");
        }
        ObsEvent::NodeDied { iteration, node } => {
            push_json_str(&mut s, "node_died");
            let _ = write!(s, ",\"iteration\":{iteration},\"node\":{node}");
        }
        ObsEvent::StaleMessageUsed { iteration, count } => {
            push_json_str(&mut s, "stale_message_used");
            let _ = write!(s, ",\"iteration\":{iteration},\"count\":{count}");
        }
        ObsEvent::DiscreteQuery {
            method,
            variables,
            samples,
        } => {
            push_json_str(&mut s, "discrete_query");
            s.push_str(",\"method\":");
            push_json_str(&mut s, method);
            let _ = write!(s, ",\"variables\":{variables},\"samples\":{samples}");
        }
        ObsEvent::EpochAdvanced { tenant, epoch } => {
            push_json_str(&mut s, "epoch_advanced");
            let _ = write!(s, ",\"tenant\":{tenant},\"epoch\":{epoch}");
        }
        ObsEvent::TenantShed { tenant, epoch } => {
            push_json_str(&mut s, "tenant_shed");
            let _ = write!(s, ",\"tenant\":{tenant},\"epoch\":{epoch}");
        }
        ObsEvent::Context {
            tenant,
            epoch,
            shard,
            round,
        } => {
            push_json_str(&mut s, "context");
            let opt = |s: &mut String, key: &str, v: &Option<u64>| {
                let _ = match v {
                    Some(v) => write!(s, ",\"{key}\":{v}"),
                    None => write!(s, ",\"{key}\":null"),
                };
            };
            opt(&mut s, "tenant", tenant);
            opt(&mut s, "epoch", epoch);
            opt(&mut s, "shard", shard);
            opt(&mut s, "round", round);
        }
        ObsEvent::BoundaryExchange {
            round,
            shard,
            messages,
        } => {
            push_json_str(&mut s, "boundary_exchange");
            let _ = write!(
                s,
                ",\"round\":{round},\"shard\":{shard},\"messages\":{messages}"
            );
        }
        ObsEvent::Note { message } => {
            push_json_str(&mut s, "note");
            s.push_str(",\"message\":");
            push_json_str(&mut s, message);
        }
    }
    s.push('}');
    s
}

/// Serializes recorded runs to `sink` in the JSONL schema above, one run
/// after another, and flushes. Returns the number of lines written.
pub fn write_jsonl(runs: &[RunTrace], sink: &mut dyn TraceSink) -> io::Result<usize> {
    let mut lines = 0usize;
    for run in runs {
        sink.write_line(&run_start_line(run))?;
        lines += 1;
        for rec in &run.iterations {
            let mut s = String::from("{\"type\":\"iteration\"");
            let _ = write!(s, ",\"iter\":{},\"max_shift\":", rec.iteration);
            push_json_f64(&mut s, rec.max_shift);
            let _ = write!(
                s,
                ",\"messages\":{},\"bytes\":{}",
                rec.comm.messages, rec.comm.bytes
            );
            s.push_str(",\"damping\":");
            push_json_f64(&mut s, rec.damping);
            s.push_str(",\"schedule\":");
            push_json_str(&mut s, rec.schedule);
            s.push_str(",\"secs\":");
            push_json_f64(&mut s, rec.secs);
            s.push_str(",\"max_residual\":");
            push_json_opt_f64(&mut s, rec.max_residual());
            s.push_str(",\"mean_residual\":");
            push_json_opt_f64(&mut s, rec.mean_residual());
            s.push_str(",\"residuals\":[");
            for (k, r) in rec.residuals.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"node\":{},\"residual\":", r.node);
                push_json_f64(&mut s, r.residual);
                s.push_str(",\"kl\":");
                push_json_opt_f64(&mut s, r.kl);
                s.push('}');
            }
            s.push_str("]}");
            sink.write_line(&s)?;
            lines += 1;
        }
        for &(span, secs) in &run.spans {
            let mut s = String::from("{\"type\":\"span\",\"span\":");
            push_json_str(&mut s, span.label());
            s.push_str(",\"secs\":");
            push_json_f64(&mut s, secs);
            s.push('}');
            sink.write_line(&s)?;
            lines += 1;
        }
        for event in &run.events {
            sink.write_line(&event_line(event))?;
            lines += 1;
        }
        if let Some(sum) = run.summary {
            let mut s = String::from("{\"type\":\"run_end\"");
            let _ = write!(
                s,
                ",\"iterations\":{},\"converged\":{},\"messages\":{},\"bytes\":{}}}",
                sum.iterations, sum.converged, sum.comm.messages, sum.comm.bytes
            );
            sink.write_line(&s)?;
            lines += 1;
        }
    }
    sink.flush()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{IterationRecord, NodeResidual, RunInfo, RunSummary, SpanKind};
    use wsnloc_net::accounting::CommStats;

    fn sample_run() -> RunTrace {
        RunTrace {
            info: RunInfo {
                backend: "grid",
                nodes: 9,
                free: 6,
                edges: 10,
                max_iterations: 4,
                tolerance: 0.5,
                damping: 0.25,
                schedule: "sweep",
                message_bytes: 40,
                seed: 42,
            },
            iterations: vec![IterationRecord {
                iteration: 0,
                max_shift: 2.5,
                comm: CommStats {
                    messages: 6,
                    bytes: 240,
                },
                damping: 0.25,
                schedule: "sweep",
                secs: 0.001,
                residuals: vec![NodeResidual {
                    node: 3,
                    residual: 0.75,
                    kl: Some(0.05),
                }],
            }],
            spans: vec![(SpanKind::MessagePassing, 0.002)],
            events: vec![ObsEvent::Note {
                message: "say \"hi\"\n".to_owned(),
            }],
            summary: Some(RunSummary {
                iterations: 1,
                converged: false,
                comm: CommStats {
                    messages: 6,
                    bytes: 240,
                },
            }),
        }
    }

    #[test]
    fn writes_one_line_per_record() {
        let mut sink = VecSink::new();
        let n = write_jsonl(&[sample_run()], &mut sink).unwrap();
        // run_start + 1 iteration + 1 span + 1 event + run_end
        assert_eq!(n, 5);
        assert_eq!(sink.lines.len(), 5);
        assert!(sink.lines[0].starts_with("{\"type\":\"run_start\""));
        assert!(sink.lines[0].contains("\"backend\":\"grid\""));
        assert!(sink.lines[0].contains("\"schedule\":\"sweep\""));
        assert!(sink.lines[1].contains("\"max_residual\":0.75"));
        assert!(sink.lines[1].contains("\"kl\":0.05"));
        assert!(sink.lines[2].contains("\"span\":\"message_passing\""));
        assert!(sink.lines[4].contains("\"converged\":false"));
    }

    #[test]
    fn serializes_fallback_events() {
        let mut run = sample_run();
        run.events = vec![
            ObsEvent::GridUniformFallback {
                edge: 7,
                stage: "kernel",
            },
            ObsEvent::ThreadPoolFallback {
                requested: 8,
                error: "no threads".to_owned(),
            },
        ];
        let mut sink = VecSink::new();
        write_jsonl(&[run], &mut sink).unwrap();
        assert!(sink
            .lines
            .iter()
            .any(|l| l.contains("\"event\":\"grid_uniform_fallback\"")
                && l.contains("\"edge\":7")
                && l.contains("\"stage\":\"kernel\"")));
        assert!(sink
            .lines
            .iter()
            .any(|l| l.contains("\"event\":\"thread_pool_fallback\"")
                && l.contains("\"requested\":8")
                && l.contains("\"error\":\"no threads\"")));
    }

    #[test]
    fn escapes_strings() {
        let mut sink = VecSink::new();
        write_jsonl(&[sample_run()], &mut sink).unwrap();
        assert!(sink.lines[3].contains("\"message\":\"say \\\"hi\\\"\\n\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut run = sample_run();
        run.iterations[0].max_shift = f64::NAN;
        run.iterations[0].residuals[0].residual = f64::INFINITY;
        let mut sink = VecSink::new();
        write_jsonl(&[run], &mut sink).unwrap();
        assert!(sink.lines[1].contains("\"max_shift\":null"));
        assert!(sink.lines[1].contains("\"residual\":null"));
        // Every line must still parse as balanced-brace JSON-ish output.
        for line in &sink.lines {
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces in {line}"
            );
        }
    }

    #[test]
    fn jsonl_sink_writes_newlines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.write_line("{\"a\":1}").unwrap();
            sink.write_line("{\"b\":2}").unwrap();
            sink.finish().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        use std::sync::{Arc, Mutex};

        /// A writer that buffers internally and only publishes on flush,
        /// mimicking `BufWriter<File>`.
        struct FlushVisible {
            pending: Vec<u8>,
            published: Arc<Mutex<Vec<u8>>>,
        }
        impl Write for FlushVisible {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.pending.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                if let Ok(mut published) = self.published.lock() {
                    published.extend_from_slice(&self.pending);
                }
                self.pending.clear();
                Ok(())
            }
        }

        let published = Arc::new(Mutex::new(Vec::new()));
        {
            let mut sink = JsonlSink::new(FlushVisible {
                pending: Vec::new(),
                published: Arc::clone(&published),
            });
            sink.write_line("{\"a\":1}").unwrap();
            // No explicit flush/finish: the drop must publish the line.
        }
        let seen = published.lock().unwrap().clone();
        assert_eq!(String::from_utf8(seen).unwrap(), "{\"a\":1}\n");
    }

    #[test]
    fn empty_trace_writes_nothing() {
        let mut sink = VecSink::new();
        let n = write_jsonl(&[], &mut sink).unwrap();
        assert_eq!(n, 0);
        assert!(sink.lines.is_empty());
    }
}
