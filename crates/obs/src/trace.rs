//! The recording observer: everything a run reports, kept in memory.

use crate::accounting;
use crate::observer::{
    InferenceObserver, IterationRecord, ObsEvent, RunInfo, RunSummary, SpanKind,
};
use std::sync::{Mutex, MutexGuard};

/// The complete record of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Run metadata.
    pub info: RunInfo,
    /// One record per BP iteration, in order.
    pub iterations: Vec<IterationRecord>,
    /// Timed phases, in completion order.
    pub spans: Vec<(SpanKind, f64)>,
    /// Structured events, in emission order.
    pub events: Vec<ObsEvent>,
    /// Final verdict; `None` if the run never finished.
    pub summary: Option<RunSummary>,
}

impl RunTrace {
    /// Per-iteration max residuals — the convergence curve most analyses
    /// want. `NaN`-free by construction when residuals were recorded.
    pub fn residual_curve(&self) -> Vec<f64> {
        self.iterations
            .iter()
            .filter_map(IterationRecord::max_residual)
            .collect()
    }
}

/// An [`InferenceObserver`] that records every callback into [`RunTrace`]s.
///
/// Interior mutability behind a mutex lets the synchronous-schedule rayon
/// path report from worker threads. The observer is designed for
/// *sequential* runs (one BP run at a time, any number of them back to
/// back); concurrent runs reporting into one `TraceObserver` interleave
/// their records into whichever run started last. The evaluation runner
/// therefore attaches one `TraceObserver` per trial.
#[derive(Debug, Default)]
pub struct TraceObserver {
    runs: Mutex<Vec<RunTrace>>,
}

impl TraceObserver {
    /// A fresh, empty observer.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// Locks the record store; a poisoned lock (a panicking reporter) is
    /// recovered since every mutation keeps the records consistent.
    fn locked(&self) -> MutexGuard<'_, Vec<RunTrace>> {
        self.runs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Snapshot of all recorded runs.
    pub fn runs(&self) -> Vec<RunTrace> {
        self.locked().clone()
    }

    /// Removes and returns all recorded runs, leaving the observer empty.
    pub fn take_runs(&self) -> Vec<RunTrace> {
        std::mem::take(&mut *self.locked())
    }

    /// The most recently started run, if any.
    pub fn last_run(&self) -> Option<RunTrace> {
        self.locked().last().cloned()
    }

    /// Number of recorded runs.
    pub fn run_count(&self) -> usize {
        self.locked().len()
    }
}

impl InferenceObserver for TraceObserver {
    fn wants_residuals(&self) -> bool {
        true
    }

    fn on_run_start(&self, info: &RunInfo) {
        self.locked().push(RunTrace {
            info: *info,
            iterations: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
            summary: None,
        });
    }

    fn on_iteration(&self, record: &IterationRecord) {
        accounting::note_iteration_record();
        if let Some(run) = self.locked().last_mut() {
            run.iterations.push(record.clone());
        }
    }

    fn on_span(&self, span: SpanKind, secs: f64) {
        if let Some(run) = self.locked().last_mut() {
            run.spans.push((span, secs));
        }
    }

    fn on_event(&self, event: &ObsEvent) {
        if let Some(run) = self.locked().last_mut() {
            run.events.push(event.clone());
        }
    }

    fn on_run_end(&self, summary: &RunSummary) {
        if let Some(run) = self.locked().last_mut() {
            run.summary = Some(*summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NodeResidual;
    use wsnloc_net::accounting::CommStats;

    fn info() -> RunInfo {
        RunInfo {
            backend: "particle",
            nodes: 10,
            free: 8,
            edges: 12,
            max_iterations: 5,
            tolerance: 1.0,
            damping: 0.0,
            schedule: "synchronous",
            message_bytes: 24,
            seed: 7,
        }
    }

    fn iteration(i: usize, residual: f64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            max_shift: residual,
            comm: CommStats {
                messages: 8,
                bytes: 192,
            },
            damping: 0.0,
            schedule: "synchronous",
            secs: 0.0,
            residuals: vec![NodeResidual {
                node: 1,
                residual,
                kl: None,
            }],
        }
    }

    #[test]
    fn records_a_full_run() {
        let obs = TraceObserver::new();
        obs.on_run_start(&info());
        obs.on_span(SpanKind::PriorInit, 0.01);
        obs.on_iteration(&iteration(0, 3.0));
        obs.on_iteration(&iteration(1, 1.0));
        obs.on_event(&ObsEvent::MapFallbackToMmse {
            backend: "particle",
        });
        obs.on_run_end(&RunSummary {
            iterations: 2,
            converged: true,
            comm: CommStats {
                messages: 16,
                bytes: 384,
            },
        });

        let runs = obs.runs();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.iterations.len(), 2);
        assert_eq!(run.residual_curve(), vec![3.0, 1.0]);
        assert_eq!(run.spans, vec![(SpanKind::PriorInit, 0.01)]);
        assert_eq!(run.events.len(), 1);
        assert_eq!(run.summary.map(|s| s.converged), Some(true));
    }

    #[test]
    fn separates_sequential_runs() {
        let obs = TraceObserver::new();
        obs.on_run_start(&info());
        obs.on_iteration(&iteration(0, 2.0));
        obs.on_run_start(&info());
        obs.on_iteration(&iteration(0, 5.0));
        assert_eq!(obs.run_count(), 2);
        let runs = obs.take_runs();
        assert_eq!(runs[0].iterations.len(), 1);
        assert_eq!(runs[1].residual_curve(), vec![5.0]);
        assert_eq!(obs.run_count(), 0);
    }

    #[test]
    fn callbacks_before_run_start_are_dropped() {
        let obs = TraceObserver::new();
        obs.on_iteration(&iteration(0, 1.0));
        obs.on_span(SpanKind::ModelBuild, 0.1);
        assert_eq!(obs.run_count(), 0);
    }

    #[test]
    fn trace_observer_wants_residuals() {
        assert!(TraceObserver::new().wants_residuals());
    }
}
