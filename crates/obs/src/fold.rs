//! The aggregation observer: folds every observer callback into
//! per-iteration and per-run metrics.
//!
//! [`MetricsObserver`] implements [`InferenceObserver`] and feeds two
//! stores at once:
//!
//! - a [`MetricsRegistry`] (counters and histograms, lock-free on the
//!   hot path) so live runs can be scraped/exported while in flight;
//! - a mutex-guarded fold of per-iteration aggregates — residual pools
//!   for exact quantiles, communication totals, and fault-event counts
//!   keyed by the *event's own* iteration field.
//!
//! The fold is deliberately **order-insensitive within a run**: fault
//! events carry their iteration index, span seconds accumulate by
//! label, and residual quantiles are computed from sorted pools at
//! snapshot time. That is the property that makes `repro analyze` on a
//! recorded trace.jsonl reproduce the live run's snapshot bit for bit,
//! even though serialization regroups records (iterations, then spans,
//! then events).
//!
//! [`MetricsObserver::snapshot`] freezes the fold into a
//! [`MetricsSnapshot`] — a plain comparable value with table renderers
//! ([`MetricsSnapshot::convergence_table`],
//! [`MetricsSnapshot::fault_table`]) — and
//! [`MetricsSnapshot::merge`] combines per-trial snapshots exactly
//! (residual pools concatenate, counts sum, quantiles recompute).

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::observer::{
    InferenceObserver, IterationRecord, ObsEvent, RunInfo, RunSummary, SpanKind,
};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Totals of every structured [`ObsEvent`] kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Directed-link messages lost to the fault transport.
    pub dropped_messages: u64,
    /// Directed links that delivered stale (duplicate) content.
    pub stale_messages: u64,
    /// Nodes that died under the fault plan.
    pub node_deaths: u64,
    /// MAP→MMSE estimator fallbacks.
    pub map_fallbacks: u64,
    /// Grid messages that collapsed to the uniform fallback.
    pub grid_uniform_fallbacks: u64,
    /// Evaluation thread-pool build failures.
    pub pool_fallbacks: u64,
    /// Discrete Bayesian-network queries.
    pub discrete_queries: u64,
    /// Streaming-tenant epochs advanced (BP ran).
    pub epoch_advances: u64,
    /// Streaming-tenant epochs shed under overload (coasted, no BP).
    pub tenants_shed: u64,
    /// Correlation-context stamps (tenant/epoch/shard/round markers).
    pub contexts: u64,
    /// Sharded outer-round boundary exchanges (one per shard per round).
    pub boundary_exchanges: u64,
    /// Cross-shard belief messages delivered at boundary exchanges.
    pub boundary_messages: u64,
    /// Free-form notes.
    pub notes: u64,
}

/// Aggregates for one iteration index, pooled over every run that
/// reached it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationMetrics {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Runs that executed this iteration.
    pub runs: u64,
    /// Belief broadcasts this iteration, summed over runs.
    pub messages: u64,
    /// Wire bytes this iteration, summed over runs.
    pub bytes: u64,
    /// Messages dropped by the fault transport at this iteration.
    pub dropped: u64,
    /// Stale deliveries at this iteration.
    pub stale: u64,
    /// Node deaths at this iteration.
    pub deaths: u64,
    /// Sum of per-run `max_shift` (divide by `runs` for the mean).
    pub max_shift_sum: f64,
    /// Pooled per-node residuals across runs, in arrival order. Kept so
    /// snapshots merge exactly; quantiles below derive from it.
    pub residuals: Vec<f64>,
    /// Median pooled residual, when residuals were recorded.
    pub residual_q50: Option<f64>,
    /// 90th-percentile pooled residual.
    pub residual_q90: Option<f64>,
    /// Largest pooled residual.
    pub residual_max: Option<f64>,
}

impl IterationMetrics {
    /// Mean `max_shift` over the runs that reached this iteration.
    #[must_use]
    pub fn mean_max_shift(&self) -> f64 {
        if self.runs == 0 {
            f64::NAN
        } else {
            self.max_shift_sum / self.runs as f64
        }
    }

    fn finalize_quantiles(&mut self) {
        let mut sorted = self.residuals.clone();
        sorted.sort_by(f64::total_cmp);
        self.residual_q50 = quantile(&sorted, 0.50);
        self.residual_q90 = quantile(&sorted, 0.90);
        self.residual_max = sorted.last().copied();
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let pos = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round();
    sorted.get(pos as usize).copied()
}

/// A frozen, comparable aggregate of everything a [`MetricsObserver`]
/// saw. Two snapshots are equal iff every counter, pooled residual, and
/// span total matches — the equality the trace-replay round-trip test
/// asserts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Inference runs started.
    pub runs: u64,
    /// Runs that converged before their iteration cap.
    pub converged_runs: u64,
    /// Iterations executed across all runs.
    pub iterations: u64,
    /// Belief broadcasts across all runs.
    pub messages: u64,
    /// Wire bytes across all runs.
    pub bytes: u64,
    /// Structured-event totals.
    pub events: EventCounts,
    /// Per-iteration aggregates, index = iteration.
    pub per_iteration: Vec<IterationMetrics>,
    /// Per-phase wall-clock totals `(label, total_secs, calls)`, sorted
    /// by label.
    pub span_secs: Vec<(String, f64, u64)>,
}

impl MetricsSnapshot {
    /// Exactly merges snapshots (typically one per trial): counts sum,
    /// residual pools concatenate in order, quantiles recompute.
    #[must_use]
    pub fn merge(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for p in parts {
            out.runs += p.runs;
            out.converged_runs += p.converged_runs;
            out.iterations += p.iterations;
            out.messages += p.messages;
            out.bytes += p.bytes;
            let e = &mut out.events;
            e.dropped_messages += p.events.dropped_messages;
            e.stale_messages += p.events.stale_messages;
            e.node_deaths += p.events.node_deaths;
            e.map_fallbacks += p.events.map_fallbacks;
            e.grid_uniform_fallbacks += p.events.grid_uniform_fallbacks;
            e.pool_fallbacks += p.events.pool_fallbacks;
            e.discrete_queries += p.events.discrete_queries;
            e.epoch_advances += p.events.epoch_advances;
            e.tenants_shed += p.events.tenants_shed;
            e.contexts += p.events.contexts;
            e.boundary_exchanges += p.events.boundary_exchanges;
            e.boundary_messages += p.events.boundary_messages;
            e.notes += p.events.notes;
            if out.per_iteration.len() < p.per_iteration.len() {
                out.per_iteration
                    .resize_with(p.per_iteration.len(), IterationMetrics::default);
            }
            for (i, it) in p.per_iteration.iter().enumerate() {
                let acc = &mut out.per_iteration[i];
                acc.iteration = i;
                acc.runs += it.runs;
                acc.messages += it.messages;
                acc.bytes += it.bytes;
                acc.dropped += it.dropped;
                acc.stale += it.stale;
                acc.deaths += it.deaths;
                acc.max_shift_sum += it.max_shift_sum;
                acc.residuals.extend_from_slice(&it.residuals);
            }
            for (label, secs, calls) in &p.span_secs {
                match out.span_secs.iter_mut().find(|(l, _, _)| l == label) {
                    Some((_, s, c)) => {
                        *s += secs;
                        *c += calls;
                    }
                    None => out.span_secs.push((label.clone(), *secs, *calls)),
                }
            }
        }
        for it in &mut out.per_iteration {
            it.finalize_quantiles();
        }
        out.span_secs.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The convergence curve as an aligned text table: per iteration,
    /// how many runs reached it, residual quantiles, mean belief shift,
    /// and communication volume.
    #[must_use]
    pub fn convergence_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
            "iter", "runs", "res_q50", "res_q90", "res_max", "mean_shift", "msgs", "bytes"
        );
        for it in &self.per_iteration {
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>12} {:>12} {:>12} {:>12.4} {:>10} {:>12}",
                it.iteration,
                it.runs,
                fmt_opt(it.residual_q50),
                fmt_opt(it.residual_q90),
                fmt_opt(it.residual_max),
                it.mean_max_shift(),
                it.messages,
                it.bytes
            );
        }
        out
    }

    /// Fault impact per iteration: drop counts and rates, stale
    /// deliveries, node deaths. Rates are relative to the messages the
    /// iteration actually carried plus the ones it lost.
    #[must_use]
    pub fn fault_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>10} {:>9} {:>10} {:>7} {:>7}",
            "iter", "runs", "msgs", "dropped", "drop_rate", "stale", "deaths"
        );
        for it in &self.per_iteration {
            let offered = it.messages + it.dropped;
            let rate = if offered > 0 {
                it.dropped as f64 / offered as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>10} {:>9} {:>9.1}% {:>7} {:>7}",
                it.iteration,
                it.runs,
                it.messages,
                it.dropped,
                100.0 * rate,
                it.stale,
                it.deaths
            );
        }
        let e = &self.events;
        let _ = writeln!(
            out,
            "totals: dropped={} stale={} deaths={} map_fallbacks={} grid_fallbacks={} pool_fallbacks={}",
            e.dropped_messages,
            e.stale_messages,
            e.node_deaths,
            e.map_fallbacks,
            e.grid_uniform_fallbacks,
            e.pool_fallbacks
        );
        out
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_owned(),
    }
}

/// The mutex-guarded half of the fold (everything that is not a plain
/// counter).
#[derive(Debug, Default)]
struct FoldState {
    per_iter: Vec<IterationMetrics>,
    spans: Vec<(&'static str, f64, u64)>,
}

impl FoldState {
    fn at(&mut self, iteration: usize) -> &mut IterationMetrics {
        if self.per_iter.len() <= iteration {
            self.per_iter
                .resize_with(iteration + 1, IterationMetrics::default);
        }
        let acc = &mut self.per_iter[iteration];
        acc.iteration = iteration;
        acc
    }
}

/// An [`InferenceObserver`] that folds callbacks into per-iteration and
/// per-run aggregates, mirrored into a [`MetricsRegistry`] for live
/// export.
///
/// Like [`TraceObserver`](crate::TraceObserver), one `MetricsObserver`
/// is designed to watch *sequential* runs (any number, back to back);
/// the evaluation runner attaches one per trial and merges the
/// snapshots.
#[derive(Debug)]
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    runs: Counter,
    converged: Counter,
    iterations: Counter,
    messages: Counter,
    bytes: Counter,
    dropped: Counter,
    stale: Counter,
    deaths: Counter,
    map_fallbacks: Counter,
    grid_fallbacks: Counter,
    pool_fallbacks: Counter,
    discrete_queries: Counter,
    epoch_advances: Counter,
    tenants_shed: Counter,
    contexts: Counter,
    boundary_exchanges: Counter,
    boundary_messages: Counter,
    notes: Counter,
    iter_secs: Histogram,
    residual_hist: Histogram,
    state: Mutex<FoldState>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::with_registry(Arc::new(MetricsRegistry::new()))
    }
}

impl MetricsObserver {
    /// A fresh observer with its own private registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsObserver::default()
    }

    /// An observer exporting into a shared `registry` (so several
    /// observers — or other subsystems — render into one scrape).
    #[must_use]
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help);
        MetricsObserver {
            runs: c("wsnloc_bp_runs", "inference runs started"),
            converged: c("wsnloc_bp_runs_converged", "runs converged before the cap"),
            iterations: c("wsnloc_bp_iterations", "BP iterations executed"),
            messages: c("wsnloc_bp_messages", "belief broadcasts"),
            bytes: c("wsnloc_bp_bytes", "belief broadcast wire bytes"),
            dropped: c(
                "wsnloc_fault_dropped_messages",
                "messages lost to the fault transport",
            ),
            stale: c(
                "wsnloc_fault_stale_messages",
                "stale (duplicate) deliveries",
            ),
            deaths: c(
                "wsnloc_fault_node_deaths",
                "nodes dead under the fault plan",
            ),
            map_fallbacks: c("wsnloc_map_fallbacks", "MAP->MMSE estimator fallbacks"),
            grid_fallbacks: c(
                "wsnloc_grid_uniform_fallbacks",
                "grid messages collapsed to uniform",
            ),
            pool_fallbacks: c("wsnloc_pool_fallbacks", "thread-pool build failures"),
            discrete_queries: c("wsnloc_discrete_queries", "discrete BN queries"),
            epoch_advances: c(
                "wsnloc_stream_epochs_advanced",
                "streaming-tenant epochs that ran BP",
            ),
            tenants_shed: c(
                "wsnloc_stream_tenants_shed",
                "streaming-tenant epochs shed under overload",
            ),
            contexts: c(
                "wsnloc_context_stamps",
                "correlation-context stamps (tenant/epoch/shard/round)",
            ),
            boundary_exchanges: c(
                "wsnloc_shard_boundary_exchanges",
                "sharded outer-round boundary exchanges",
            ),
            boundary_messages: c(
                "wsnloc_shard_boundary_messages",
                "cross-shard belief messages delivered at exchanges",
            ),
            notes: c("wsnloc_notes", "free-form observer notes"),
            iter_secs: registry.histogram(
                "wsnloc_bp_iteration_seconds",
                "wall seconds per BP iteration",
                Histogram::log_bounds(1e-6, 10.0),
            ),
            residual_hist: registry.histogram(
                "wsnloc_bp_residual",
                "per-node belief residuals",
                Histogram::log_bounds(1e-4, 100.0),
            ),
            registry,
            state: Mutex::new(FoldState::default()),
        }
    }

    /// The registry this observer exports into.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    fn locked(&self) -> MutexGuard<'_, FoldState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Freezes the current fold into a comparable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.locked();
        let mut per_iteration = st.per_iter.clone();
        for it in &mut per_iteration {
            it.finalize_quantiles();
        }
        let mut span_secs: Vec<(String, f64, u64)> = st
            .spans
            .iter()
            .map(|(l, s, c)| ((*l).to_owned(), *s, *c))
            .collect();
        drop(st);
        span_secs.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            runs: self.runs.value(),
            converged_runs: self.converged.value(),
            iterations: self.iterations.value(),
            messages: self.messages.value(),
            bytes: self.bytes.value(),
            events: EventCounts {
                dropped_messages: self.dropped.value(),
                stale_messages: self.stale.value(),
                node_deaths: self.deaths.value(),
                map_fallbacks: self.map_fallbacks.value(),
                grid_uniform_fallbacks: self.grid_fallbacks.value(),
                pool_fallbacks: self.pool_fallbacks.value(),
                discrete_queries: self.discrete_queries.value(),
                epoch_advances: self.epoch_advances.value(),
                tenants_shed: self.tenants_shed.value(),
                contexts: self.contexts.value(),
                boundary_exchanges: self.boundary_exchanges.value(),
                boundary_messages: self.boundary_messages.value(),
                notes: self.notes.value(),
            },
            per_iteration,
            span_secs,
        }
    }
}

impl InferenceObserver for MetricsObserver {
    fn wants_residuals(&self) -> bool {
        true
    }

    fn on_run_start(&self, _info: &RunInfo) {
        self.runs.inc();
    }

    fn on_iteration(&self, record: &IterationRecord) {
        self.iterations.inc();
        self.messages.add(record.comm.messages);
        self.bytes.add(record.comm.bytes);
        self.iter_secs.observe(record.secs);
        for r in &record.residuals {
            self.residual_hist.observe(r.residual);
        }
        let mut st = self.locked();
        let acc = st.at(record.iteration);
        acc.runs += 1;
        acc.messages += record.comm.messages;
        acc.bytes += record.comm.bytes;
        acc.max_shift_sum += record.max_shift;
        acc.residuals
            .extend(record.residuals.iter().map(|r| r.residual));
    }

    fn on_span(&self, span: SpanKind, secs: f64) {
        let label = span.label();
        let mut st = self.locked();
        match st.spans.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, s, c)) => {
                *s += secs;
                *c += 1;
            }
            None => st.spans.push((label, secs, 1)),
        }
    }

    fn on_event(&self, event: &ObsEvent) {
        match event {
            ObsEvent::MapFallbackToMmse { .. } => self.map_fallbacks.inc(),
            ObsEvent::GridUniformFallback { .. } => self.grid_fallbacks.inc(),
            ObsEvent::ThreadPoolFallback { .. } => self.pool_fallbacks.inc(),
            ObsEvent::DiscreteQuery { .. } => self.discrete_queries.inc(),
            ObsEvent::EpochAdvanced { .. } => self.epoch_advances.inc(),
            ObsEvent::TenantShed { .. } => self.tenants_shed.inc(),
            ObsEvent::Context { .. } => self.contexts.inc(),
            ObsEvent::BoundaryExchange { messages, .. } => {
                self.boundary_exchanges.inc();
                self.boundary_messages.add(*messages);
            }
            ObsEvent::Note { .. } => self.notes.inc(),
            ObsEvent::MessageDropped { iteration, count } => {
                self.dropped.add(*count);
                self.locked().at(*iteration).dropped += count;
            }
            ObsEvent::StaleMessageUsed { iteration, count } => {
                self.stale.add(*count);
                self.locked().at(*iteration).stale += count;
            }
            ObsEvent::NodeDied { iteration, .. } => {
                self.deaths.inc();
                self.locked().at(*iteration).deaths += 1;
            }
        }
    }

    fn on_run_end(&self, summary: &RunSummary) {
        if summary.converged {
            self.converged.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NodeResidual;
    use wsnloc_net::accounting::CommStats;

    fn info() -> RunInfo {
        RunInfo {
            backend: "grid",
            nodes: 4,
            free: 2,
            edges: 3,
            max_iterations: 3,
            tolerance: 0.0,
            damping: 0.0,
            schedule: "synchronous",
            message_bytes: 40,
            seed: 9,
        }
    }

    fn rec(i: usize, residuals: &[f64]) -> IterationRecord {
        IterationRecord {
            iteration: i,
            max_shift: residuals.iter().copied().fold(0.0, f64::max),
            comm: CommStats {
                messages: 4,
                bytes: 160,
            },
            damping: 0.0,
            schedule: "synchronous",
            secs: 0.001,
            residuals: residuals
                .iter()
                .enumerate()
                .map(|(n, &r)| NodeResidual {
                    node: n,
                    residual: r,
                    kl: None,
                })
                .collect(),
        }
    }

    #[test]
    fn folds_a_run_into_per_iteration_aggregates() {
        let m = MetricsObserver::new();
        m.on_run_start(&info());
        m.on_iteration(&rec(0, &[3.0, 1.0]));
        m.on_iteration(&rec(1, &[0.5, 0.25]));
        m.on_event(&ObsEvent::MessageDropped {
            iteration: 1,
            count: 2,
        });
        m.on_event(&ObsEvent::NodeDied {
            iteration: 0,
            node: 3,
        });
        m.on_span(SpanKind::MessagePassing, 0.5);
        m.on_run_end(&RunSummary {
            iterations: 2,
            converged: true,
            comm: CommStats {
                messages: 8,
                bytes: 320,
            },
        });

        let s = m.snapshot();
        assert_eq!(s.runs, 1);
        assert_eq!(s.converged_runs, 1);
        assert_eq!(s.iterations, 2);
        assert_eq!(s.messages, 8);
        assert_eq!(s.bytes, 320);
        assert_eq!(s.events.dropped_messages, 2);
        assert_eq!(s.events.node_deaths, 1);
        assert_eq!(s.per_iteration.len(), 2);
        assert_eq!(s.per_iteration[0].deaths, 1);
        assert_eq!(s.per_iteration[1].dropped, 2);
        assert_eq!(s.per_iteration[0].residual_max, Some(3.0));
        // Nearest-rank on [0.25, 0.5]: round(0.5 * 1) = 1 → upper element.
        assert_eq!(s.per_iteration[1].residual_q50, Some(0.5));
        assert_eq!(s.span_secs.len(), 1);
        assert!(s.convergence_table().contains("res_q50"));
        assert!(s.fault_table().contains("dropped=2"));
        // The registry mirrors the counters for live export.
        let text = m.registry().render_openmetrics();
        assert!(text.contains("wsnloc_bp_iterations_total 2"));
        assert!(text.contains("wsnloc_fault_dropped_messages_total 2"));
    }

    #[test]
    fn event_folding_is_order_insensitive() {
        // Same records, events delivered before vs after the iteration
        // records (the serialization reorder): identical snapshots.
        let drop_event = ObsEvent::MessageDropped {
            iteration: 0,
            count: 3,
        };
        let live = MetricsObserver::new();
        live.on_run_start(&info());
        live.on_event(&drop_event);
        live.on_iteration(&rec(0, &[1.0]));
        live.on_span(SpanKind::PriorInit, 0.25);

        let replay = MetricsObserver::new();
        replay.on_run_start(&info());
        replay.on_iteration(&rec(0, &[1.0]));
        replay.on_span(SpanKind::PriorInit, 0.25);
        replay.on_event(&drop_event);

        assert_eq!(live.snapshot(), replay.snapshot());
    }

    #[test]
    fn merge_concatenates_pools_and_recomputes_quantiles() {
        let a = MetricsObserver::new();
        a.on_run_start(&info());
        a.on_iteration(&rec(0, &[1.0, 2.0]));
        let b = MetricsObserver::new();
        b.on_run_start(&info());
        b.on_iteration(&rec(0, &[3.0, 4.0]));

        let merged = MetricsSnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.per_iteration[0].runs, 2);
        assert_eq!(merged.per_iteration[0].residuals, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(merged.per_iteration[0].residual_max, Some(4.0));
        // Nearest-rank on [1, 2, 3, 4]: round(0.5 * 3) = 2 → third element.
        assert_eq!(merged.per_iteration[0].residual_q50, Some(3.0));

        // Merging matches a single observer that saw both runs.
        let both = MetricsObserver::new();
        both.on_run_start(&info());
        both.on_iteration(&rec(0, &[1.0, 2.0]));
        both.on_run_start(&info());
        both.on_iteration(&rec(0, &[3.0, 4.0]));
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sorted, 0.5), Some(3.0));
        assert_eq!(quantile(&sorted, 0.0), Some(1.0));
        assert_eq!(quantile(&sorted, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
