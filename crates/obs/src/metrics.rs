//! The metrics registry: sharded counters, gauges, log-scale
//! histograms, and a Prometheus/OpenMetrics text exporter.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-free hot path.** Handles ([`Counter`], [`Gauge`],
//!    [`Histogram`]) are `Arc`s over atomics; `inc`/`set`/`observe`
//!    never take a lock. The registry's mutex guards *registration and
//!    rendering only* — both cold.
//! 2. **Shard contended counters.** A [`Counter`] spreads increments
//!    over cache-line-padded shards selected by a per-thread index, so
//!    rayon workers bumping the same counter do not ping-pong a cache
//!    line. Reads sum the shards (monotonic, but not a snapshot —
//!    exactly the Prometheus counter contract).
//! 3. **Fixed buckets.** Histograms use immutable log-scale bucket
//!    bounds chosen at registration ([`Histogram::log_bounds`] builds a
//!    1–2–5 series), so `observe` is a bounded linear scan with no
//!    allocation.
//!
//! [`MetricsRegistry::render_openmetrics`] serializes every registered
//! metric in the OpenMetrics text format (`# TYPE`/`# HELP` headers,
//! `_total` counter samples, `_bucket{le="…"}`/`_sum`/`_count`
//! histogram series), ready to be scraped or written to a `.prom` file.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shards per counter. Small powers of two beyond the worker count buy
/// nothing; 16 covers every pool the eval harness builds.
const SHARDS: usize = 16;

/// A cache-line-padded atomic cell, so adjacent shards never share a
/// line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Monotonically increasing index handing each thread its own shard.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned on first use.
    static THREAD_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A monotonically increasing counter, sharded across cache lines.
/// Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<[PaddedCell; SHARDS]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter {
            cells: Arc::new(std::array::from_fn(|_| PaddedCell::default())),
        }
    }
}

impl Counter {
    /// A fresh counter at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Lock-free: one relaxed `fetch_add` on this thread's
    /// shard.
    pub fn add(&self, n: u64) {
        self.cells[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over shards.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins gauge holding one `f64`. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A fresh gauge at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: immutable bounds, atomic per-bucket counts.
#[derive(Debug)]
struct HistogramCore {
    /// Upper bucket bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
    total: AtomicU64,
}

/// A fixed-bucket histogram. Observation is lock-free: a bounded scan
/// of the immutable bounds plus relaxed atomic updates. Cloning shares
/// the buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram with the given upper bucket bounds (sorted
    /// ascending; an `+Inf` overflow bucket is implicit).
    #[must_use]
    pub fn with_bounds(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds,
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                total: AtomicU64::new(0),
            }),
        }
    }

    /// Log-scale 1–2–5 bounds covering `[lo, hi]` (both positive), e.g.
    /// `log_bounds(1e-6, 10.0)` → `1e-6, 2e-6, 5e-6, …, 5.0, 10.0`.
    /// The canonical shape for latency-style metrics.
    #[must_use]
    pub fn log_bounds(lo: f64, hi: f64) -> Vec<f64> {
        let lo = lo.abs().max(1e-12);
        let hi = hi.abs().max(lo);
        let mut bounds = Vec::new();
        let mut decade = 10f64.powi(lo.log10().floor() as i32);
        while decade <= hi * 1.0000001 {
            for mult in [1.0, 2.0, 5.0] {
                let b = decade * mult;
                if b >= lo * 0.9999999 && b <= hi * 1.0000001 {
                    bounds.push(b);
                }
            }
            decade *= 10.0;
        }
        bounds
    }

    /// Records one observation. Non-finite values count toward the
    /// overflow bucket and are excluded from the sum.
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        let idx = if v.is_finite() {
            c.bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(c.bounds.len())
        } else {
            c.bounds.len()
        };
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            // CAS loop: f64 add has no native atomic; contention here is
            // bounded by the same sharding callers use for counters.
            let mut cur = c.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match c.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum of finite observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative counts per bound (OpenMetrics `le` semantics),
    /// including the trailing `+Inf` bucket.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.core.bounds.len() + 1);
        for (i, count) in self.core.counts.iter().enumerate() {
            acc += count.load(Ordering::Relaxed);
            let bound = self.core.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// Escapes a label value for the OpenMetrics text format: backslash,
/// double quote, and newline must be written as `\\`, `\"`, and `\n`
/// (everything else passes through verbatim).
#[must_use]
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text for the OpenMetrics text format: backslash and
/// newline must be written as `\\` and `\n` so the metadata line stays
/// one line.
#[must_use]
pub fn escape_help(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The OpenMetrics unit implied by a metric name's suffix (`_seconds` →
/// `seconds`, `_bytes` → `bytes`), for `# UNIT` metadata lines.
#[must_use]
pub fn unit_for_name(name: &str) -> Option<&'static str> {
    if name.ends_with("_seconds") {
        Some("seconds")
    } else if name.ends_with("_bytes") {
        Some("bytes")
    } else {
        None
    }
}

/// A registered metric: name, help text, and the shared handle.
#[derive(Debug, Clone)]
enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    help: String,
    kind: MetricKind,
}

/// A named collection of metrics with an OpenMetrics text exporter.
///
/// Registration returns shared handles; re-registering a name returns
/// the existing handle (a kind mismatch returns a fresh *detached*
/// handle rather than corrupting the registered one — callers that hit
/// this path keep working, their samples just stay private).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn locked(&self) -> MutexGuard<'_, Vec<MetricEntry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered as `name`, creating it if new.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut entries = self.locked();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let MetricKind::Counter(c) = &e.kind {
                return c.clone();
            }
            return Counter::new();
        }
        let c = Counter::new();
        entries.push(MetricEntry {
            name: name.to_owned(),
            help: help.to_owned(),
            kind: MetricKind::Counter(c.clone()),
        });
        c
    }

    /// The gauge registered as `name`, creating it if new.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut entries = self.locked();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let MetricKind::Gauge(g) = &e.kind {
                return g.clone();
            }
            return Gauge::new();
        }
        let g = Gauge::new();
        entries.push(MetricEntry {
            name: name.to_owned(),
            help: help.to_owned(),
            kind: MetricKind::Gauge(g.clone()),
        });
        g
    }

    /// The histogram registered as `name`, creating it with `bounds` if
    /// new (existing histograms keep their original bounds).
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<f64>) -> Histogram {
        let mut entries = self.locked();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let MetricKind::Histogram(h) = &e.kind {
                return h.clone();
            }
            return Histogram::with_bounds(bounds);
        }
        let h = Histogram::with_bounds(bounds);
        entries.push(MetricEntry {
            name: name.to_owned(),
            help: help.to_owned(),
            kind: MetricKind::Histogram(h.clone()),
        });
        h
    }

    /// Serializes every registered metric in the OpenMetrics text
    /// format, metrics sorted by name, terminated by `# EOF`.
    #[must_use]
    pub fn render_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.locked();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].name.cmp(&entries[b].name));
        let mut out = String::new();
        for idx in order {
            let e = &entries[idx];
            if !e.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            }
            match &e.kind {
                MetricKind::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    if let Some(unit) = unit_for_name(&e.name) {
                        let _ = writeln!(out, "# UNIT {} {unit}", e.name);
                    }
                    let _ = writeln!(out, "{}_total {}", e.name, c.value());
                }
                MetricKind::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    if let Some(unit) = unit_for_name(&e.name) {
                        let _ = writeln!(out, "# UNIT {} {unit}", e.name);
                    }
                    let _ = writeln!(out, "{} {}", e.name, g.value());
                }
                MetricKind::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    if let Some(unit) = unit_for_name(&e.name) {
                        let _ = writeln!(out, "# UNIT {} {unit}", e.name);
                    }
                    for (bound, count) in h.cumulative_buckets() {
                        if bound.is_finite() {
                            let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {count}", e.name);
                        } else {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {count}", e.name);
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", e.name, h.count());
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wsnloc_test_ops", "ops");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        // Re-registration returns the same cells.
        let again = reg.counter("wsnloc_test_ops", "ops");
        again.add(5);
        assert_eq!(c.value(), 4005);
    }

    #[test]
    fn gauge_holds_last_write() {
        let g = Gauge::new();
        g.set(2.5);
        g.set(-1.25);
        assert!((g.value() + 1.25).abs() < 1e-15);
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let h = Histogram::with_bounds(vec![0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0); // overflow
        h.observe(f64::NAN); // overflow, excluded from sum
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5.0555).abs() < 1e-12);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].1, 1);
        assert_eq!(buckets[1].1, 2);
        assert_eq!(buckets[2].1, 3);
        assert_eq!(buckets[3].1, 5);
        assert!(buckets[3].0.is_infinite());
    }

    #[test]
    fn log_bounds_build_a_125_series() {
        let b = Histogram::log_bounds(1e-3, 1.0);
        assert_eq!(b.len(), 10);
        assert!((b[0] - 1e-3).abs() < 1e-15);
        assert!((b[1] - 2e-3).abs() < 1e-15);
        assert!((b[2] - 5e-3).abs() < 1e-15);
        assert!((b[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn openmetrics_rendering_is_sorted_and_terminated() {
        let reg = MetricsRegistry::new();
        reg.counter("wsnloc_zeta", "last").inc();
        reg.gauge("wsnloc_alpha", "first").set(3.0);
        let h = reg.histogram("wsnloc_mid", "middle", vec![0.1, 1.0]);
        h.observe(0.5);
        let text = reg.render_openmetrics();
        let alpha = text.find("wsnloc_alpha").expect("gauge rendered");
        let mid = text.find("wsnloc_mid").expect("histogram rendered");
        let zeta = text.find("wsnloc_zeta").expect("counter rendered");
        assert!(alpha < mid && mid < zeta, "sorted by name");
        assert!(text.contains("# TYPE wsnloc_zeta counter"));
        assert!(text.contains("wsnloc_zeta_total 1"));
        assert!(text.contains("wsnloc_mid_bucket{le=\"1\"} 1"));
        assert!(text.contains("wsnloc_mid_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("wsnloc_mid_sum 0.5"));
        assert!(text.contains("wsnloc_mid_count 1"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_conformance_units_and_escaping() {
        // Label-value escaping: backslash, quote, and newline only.
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_label_value("plain{},=:"), "plain{},=:");
        // HELP escaping keeps metadata on one line.
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");

        let reg = MetricsRegistry::new();
        reg.histogram(
            "wsnloc_tick_seconds",
            "tick latency",
            Histogram::log_bounds(1e-3, 1.0),
        )
        .observe(0.01);
        reg.gauge("wsnloc_queue_bytes", "queued bytes").set(4.0);
        reg.counter("wsnloc_plain", "no unit\nsplit help").inc();
        let text = reg.render_openmetrics();
        // `# UNIT` follows `# TYPE` for `_seconds`/`_bytes` families and
        // is absent for unitless names.
        assert!(text.contains(
            "# TYPE wsnloc_tick_seconds histogram\n# UNIT wsnloc_tick_seconds seconds\n"
        ));
        assert!(text.contains("# TYPE wsnloc_queue_bytes gauge\n# UNIT wsnloc_queue_bytes bytes\n"));
        assert!(!text.contains("# UNIT wsnloc_plain"));
        // Newlines in help text are escaped, and the exposition ends
        // with the EOF marker.
        assert!(text.contains("# HELP wsnloc_plain no unit\\nsplit help\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wsnloc_dual", "counter");
        c.inc();
        // Asking for the same name as a gauge must not corrupt the
        // registered counter.
        let g = reg.gauge("wsnloc_dual", "gauge");
        g.set(9.0);
        assert!(reg.render_openmetrics().contains("wsnloc_dual_total 1"));
    }
}
