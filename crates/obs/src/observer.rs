//! The observer contract: what BP engines report, and the no-op default.

use wsnloc_net::accounting::CommStats;

/// Metadata reported once at the start of every inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunInfo {
    /// Belief representation: `"particle"`, `"grid"`, `"gaussian"`, or
    /// `"discrete"`.
    pub backend: &'static str,
    /// Total variables in the model (anchors included).
    pub nodes: usize,
    /// Free (non-anchor) variables actually updated each iteration.
    pub free: usize,
    /// Pairwise factors in the model.
    pub edges: usize,
    /// Iteration cap of this run.
    pub max_iterations: usize,
    /// Convergence tolerance (meters of belief-mean movement).
    pub tolerance: f64,
    /// Damping factor in `[0, 1)`.
    pub damping: f64,
    /// Update schedule: `"synchronous"` or `"sweep"`.
    pub schedule: &'static str,
    /// Bytes one belief broadcast costs on the wire (0 when the caller did
    /// not attach communication accounting).
    pub message_bytes: u64,
    /// Seed driving the run's stochastic parts.
    pub seed: u64,
}

/// One node's belief change across an iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeResidual {
    /// Variable id.
    pub node: usize,
    /// Backend-specific residual: L1 mass distance for grid beliefs,
    /// belief-mean displacement (meters) for particle/Gaussian beliefs.
    pub residual: f64,
    /// KL divergence of the new belief from the old, where the
    /// representation supports it (grid beliefs only).
    pub kl: Option<f64>,
}

/// Everything one BP iteration reports.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Largest belief-mean displacement this iteration (the quantity the
    /// convergence tolerance is tested against), meters.
    pub max_shift: f64,
    /// Belief broadcasts a distributed execution would have sent this
    /// iteration, and their wire bytes.
    pub comm: CommStats,
    /// Damping factor in effect.
    pub damping: f64,
    /// Schedule phase this iteration ran under.
    pub schedule: &'static str,
    /// Wall seconds spent in this iteration's update (timing only — never
    /// compared across runs).
    pub secs: f64,
    /// Per-free-node residuals. Empty unless the observer asked for them
    /// via [`InferenceObserver::wants_residuals`].
    pub residuals: Vec<NodeResidual>,
}

impl IterationRecord {
    /// Largest per-node residual, when residuals were recorded.
    pub fn max_residual(&self) -> Option<f64> {
        self.residuals
            .iter()
            .map(|r| r.residual)
            .max_by(f64::total_cmp)
    }

    /// Mean per-node residual, when residuals were recorded.
    pub fn mean_residual(&self) -> Option<f64> {
        if self.residuals.is_empty() {
            return None;
        }
        Some(self.residuals.iter().map(|r| r.residual).sum::<f64>() / self.residuals.len() as f64)
    }
}

/// The phases a localization run is timed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SpanKind {
    /// Network → factor-graph translation (priors, measurement factors,
    /// negative constraints).
    ModelBuild,
    /// Initial belief construction from the unary priors.
    PriorInit,
    /// The BP iteration loop itself.
    MessagePassing,
    /// Point-estimate and uncertainty extraction from the final beliefs.
    EstimateExtract,
}

impl SpanKind {
    /// Stable snake_case label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::ModelBuild => "model_build",
            SpanKind::PriorInit => "prior_init",
            SpanKind::MessagePassing => "message_passing",
            SpanKind::EstimateExtract => "estimate_extract",
        }
    }
}

/// Structured events outside the per-iteration cadence.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ObsEvent {
    /// A MAP point estimate was requested from a backend that cannot
    /// produce one; the run fell back to the MMSE (posterior-mean)
    /// estimator. Previously this switch was silent.
    MapFallbackToMmse {
        /// The backend that lacks a mode extractor.
        backend: &'static str,
    },
    /// A grid BP message collapsed to the uniform fallback: the scattered
    /// (or anchor-evaluated) likelihood summed to zero or a non-finite
    /// total, so the engine substituted a flat message to keep inference
    /// alive. Previously this degradation was silent.
    GridUniformFallback {
        /// Edge id (index into the MRF's edge list) whose message
        /// collapsed.
        edge: usize,
        /// `"kernel"` for a free-neighbor scatter, `"point"` for a
        /// fixed-(anchor-)source message.
        stage: &'static str,
    },
    /// A dedicated evaluation thread pool could not be built; the trials
    /// fell back to the ambient rayon pool. Previously this fallback was
    /// silent.
    ThreadPoolFallback {
        /// Thread count that was requested.
        requested: usize,
        /// The pool-build error, stringified.
        error: String,
    },
    /// One or more BP messages were lost to the fault transport this
    /// iteration (aggregated per iteration to keep trace volume sane).
    MessageDropped {
        /// BP iteration (0-based) in which the drops occurred.
        iteration: usize,
        /// Number of directed-link messages lost this iteration.
        count: u64,
    },
    /// A node died under the active fault plan: it stops transmitting
    /// from this iteration on, but its neighbors keep localizing.
    NodeDied {
        /// BP iteration (0-based) at which the node fell silent.
        iteration: usize,
        /// The node that died.
        node: usize,
    },
    /// One or more links delivered a stale (delayed, previously seen)
    /// message this iteration instead of fresh content.
    StaleMessageUsed {
        /// BP iteration (0-based) in which the stale deliveries occurred.
        iteration: usize,
        /// Number of directed links that delivered stale content.
        count: u64,
    },
    /// A discrete Bayesian-network query ran.
    DiscreteQuery {
        /// `"enumeration"`, `"variable_elimination"`, or
        /// `"likelihood_weighting"`.
        method: &'static str,
        /// Variables in the queried network.
        variables: usize,
        /// Samples drawn (0 for exact methods).
        samples: u64,
    },
    /// A streaming tenant's session advanced one measurement epoch
    /// (ran BP warm-started from the carried beliefs).
    EpochAdvanced {
        /// Tenant (session) id within the streaming engine.
        tenant: u64,
        /// 0-based epoch index within that tenant's stream.
        epoch: u64,
    },
    /// A streaming tenant was shed under overload this tick: its session
    /// coasted on the motion model (beliefs decay toward the prior)
    /// instead of running BP.
    TenantShed {
        /// Tenant (session) id within the streaming engine.
        tenant: u64,
        /// 0-based epoch index the tenant coasted through.
        epoch: u64,
    },
    /// Correlation context stamped into the event stream so one epoch
    /// can be followed across engines and shard boundaries. The
    /// streaming engine emits it immediately before (and the sharded
    /// engine during) the run the context applies to; consumers that
    /// key state by tenant — sampling policies, windowed metrics —
    /// treat it as "subsequent records belong to this tenant/epoch".
    Context {
        /// Streaming tenant (session) id, when run under an engine.
        tenant: Option<u64>,
        /// 0-based epoch index within the tenant's stream.
        epoch: Option<u64>,
        /// Shard id, when the run executes inside a sharded engine.
        shard: Option<u64>,
        /// Outer boundary-exchange round within a sharded run.
        round: Option<u64>,
    },
    /// One shard refreshed its halo mirrors at a sharded outer-round
    /// boundary exchange — the per-shard boundary-traffic signal the
    /// windowed metrics tier aggregates.
    BoundaryExchange {
        /// Outer round (0-based) the exchange followed.
        round: usize,
        /// Shard whose mirrors were refreshed.
        shard: usize,
        /// Cross-shard belief messages delivered to this shard.
        messages: u64,
    },
    /// Free-form annotation.
    Note {
        /// The annotation text.
        message: String,
    },
}

/// Final verdict of an inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunSummary {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Total belief broadcasts and wire bytes across the run.
    pub comm: CommStats,
}

/// The hook trait every BP engine reports into.
///
/// All methods default to no-ops, so an observer implements only what it
/// needs, and `&NullObserver` costs nothing: engines gate every
/// observer-only computation (residuals, belief clones) behind
/// [`InferenceObserver::wants_residuals`]. Implementations must be
/// [`Send`]`+`[`Sync`] because the synchronous schedule reports from rayon
/// workers.
pub trait InferenceObserver: Send + Sync {
    /// `true` if per-node residuals should be computed and attached to
    /// [`IterationRecord::residuals`]. Residuals require diffing each new
    /// belief against its predecessor (and, for grid beliefs, cloning the
    /// previous iteration's masses), so the default is `false`.
    fn wants_residuals(&self) -> bool {
        false
    }

    /// A run is starting.
    fn on_run_start(&self, _info: &RunInfo) {}

    /// One BP iteration finished.
    fn on_iteration(&self, _record: &IterationRecord) {}

    /// A timed phase finished.
    fn on_span(&self, _span: SpanKind, _secs: f64) {}

    /// Something noteworthy happened outside the iteration cadence.
    fn on_event(&self, _event: &ObsEvent) {}

    /// The run finished.
    fn on_run_end(&self, _summary: &RunSummary) {}
}

/// The do-nothing observer: the default for every inference entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl InferenceObserver for NullObserver {}

/// Forwards every callback to each of a set of observers — for attaching a
/// recording [`TraceObserver`](crate::TraceObserver) and a user-supplied
/// observer to the same run.
pub struct FanoutObserver<'a> {
    targets: Vec<&'a dyn InferenceObserver>,
}

impl<'a> FanoutObserver<'a> {
    /// A fan-out over `targets`, called in order.
    pub fn new(targets: Vec<&'a dyn InferenceObserver>) -> Self {
        FanoutObserver { targets }
    }
}

impl InferenceObserver for FanoutObserver<'_> {
    fn wants_residuals(&self) -> bool {
        self.targets.iter().any(|o| o.wants_residuals())
    }

    fn on_run_start(&self, info: &RunInfo) {
        for o in &self.targets {
            o.on_run_start(info);
        }
    }

    fn on_iteration(&self, record: &IterationRecord) {
        for o in &self.targets {
            o.on_iteration(record);
        }
    }

    fn on_span(&self, span: SpanKind, secs: f64) {
        for o in &self.targets {
            o.on_span(span, secs);
        }
    }

    fn on_event(&self, event: &ObsEvent) {
        for o in &self.targets {
            o.on_event(event);
        }
    }

    fn on_run_end(&self, summary: &RunSummary) {
        for o in &self.targets {
            o.on_run_end(summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(residuals: Vec<NodeResidual>) -> IterationRecord {
        IterationRecord {
            iteration: 0,
            max_shift: 1.0,
            comm: CommStats {
                messages: 4,
                bytes: 96,
            },
            damping: 0.0,
            schedule: "synchronous",
            secs: 0.0,
            residuals,
        }
    }

    #[test]
    fn residual_summaries() {
        let r = record(vec![
            NodeResidual {
                node: 1,
                residual: 0.5,
                kl: None,
            },
            NodeResidual {
                node: 2,
                residual: 1.5,
                kl: Some(0.1),
            },
        ]);
        assert_eq!(r.max_residual(), Some(1.5));
        assert_eq!(r.mean_residual(), Some(1.0));
    }

    #[test]
    fn empty_residuals_summarize_to_none() {
        let r = record(Vec::new());
        assert_eq!(r.max_residual(), None);
        assert_eq!(r.mean_residual(), None);
    }

    #[test]
    fn span_labels_are_stable() {
        assert_eq!(SpanKind::ModelBuild.label(), "model_build");
        assert_eq!(SpanKind::PriorInit.label(), "prior_init");
        assert_eq!(SpanKind::MessagePassing.label(), "message_passing");
        assert_eq!(SpanKind::EstimateExtract.label(), "estimate_extract");
    }

    #[test]
    fn null_observer_wants_nothing() {
        assert!(!NullObserver.wants_residuals());
    }

    #[test]
    fn fanout_forwards_to_every_target() {
        use crate::trace::TraceObserver;
        let a = TraceObserver::new();
        let b = TraceObserver::new();
        let fan = FanoutObserver::new(vec![&a, &b]);
        assert!(fan.wants_residuals());
        fan.on_run_start(&RunInfo {
            backend: "particle",
            nodes: 2,
            free: 1,
            edges: 1,
            max_iterations: 3,
            tolerance: 0.5,
            damping: 0.0,
            schedule: "synchronous",
            message_bytes: 8,
            seed: 1,
        });
        fan.on_iteration(&record(Vec::new()));
        assert_eq!(a.run_count(), 1);
        assert_eq!(b.last_run().map(|r| r.iterations.len()), Some(1));

        let quiet = FanoutObserver::new(vec![&NullObserver, &NullObserver]);
        assert!(!quiet.wants_residuals());
    }
}
