//! # wsnloc-obs
//!
//! Convergence telemetry and structured observability for the loopy-BP
//! inference stack. Before this crate existed, the only visibility into a
//! BP run was a single wall-clock timestamp; the non-convergence regimes
//! that dominate multipath deployments were invisible until the final
//! posterior came out wrong. This crate makes the loop *observable while it
//! runs*:
//!
//! - [`InferenceObserver`] — the hook trait every BP engine reports into:
//!   run metadata, per-iteration records (per-node belief residuals,
//!   message/byte counts, damping, schedule phase), span-style timings
//!   around model build / prior init / message passing / estimate
//!   extraction, structured events, and a convergence verdict.
//! - [`NullObserver`] — the default. Engines check
//!   [`InferenceObserver::wants_residuals`] before computing anything
//!   observer-only, so a run with the null observer does no residual work
//!   and allocates no trace storage (asserted by the
//!   [`accounting`] counters in tests).
//! - [`TraceObserver`] — records everything into an in-memory [`RunTrace`]
//!   per run, behind a mutex so the synchronous-schedule rayon path can
//!   report from worker threads.
//! - [`TraceSink`] / [`JsonlSink`] — serialize recorded traces to JSON
//!   Lines (`trace.jsonl`), one self-describing record per line, with a
//!   hand-rolled encoder because the build environment has no serde. The
//!   schema is documented in the README ("Observability") and on
//!   [`write_jsonl`]. The sink flushes on drop so panicked runs still
//!   leave parseable lines behind.
//!
//! On top of the raw event stream sits the aggregation tier:
//!
//! - [`MetricsRegistry`] — sharded [`Counter`]s, [`Gauge`]s, and
//!   log-bucket [`Histogram`]s with an OpenMetrics text exporter
//!   ([`MetricsRegistry::render_openmetrics`]).
//! - [`MetricsObserver`] — folds every [`ObsEvent`], iteration record,
//!   and span into a [`MetricsSnapshot`] (per-iteration residual
//!   quantiles, comm totals, fault counts) while mirroring the totals
//!   into a registry. The fold is *order-insensitive*, which is what
//!   makes trace replay equal the live run.
//! - [`SpanProfiler`] — hierarchical wall-clock attribution
//!   (self/child split, flame-table rendering) over the fixed BP span
//!   hierarchy; [`Stopwatch`] is the one sanctioned timing primitive
//!   outside this crate (enforced by `cargo xtask lint`).
//! - [`analyze_str`] / [`replay`] — parse `trace.jsonl` back into
//!   [`RunTrace`]s and feed them through the same observers a live run
//!   uses, so `repro analyze` and in-process metrics share one path.
//!
//! For *live* deployments (the streaming engine in `wsnloc-serve`) a
//! telemetry tier sits on top of all of the above:
//!
//! - [`WindowedMetrics`] — fixed-slot ring buffers over labeled series
//!   (per-tenant epochs solved/shed, per-shard boundary-message volume,
//!   tick-latency quantile pools) advanced once per engine tick, so
//!   sliding-window rates and quantiles are available while the run is
//!   still going. Rotation is caller-driven, never wall-clock-driven.
//! - [`TelemetryServer`] — a hand-rolled, std-only HTTP/1.1 listener
//!   exposing `/metrics` (OpenMetrics: registry totals + windowed
//!   series), `/healthz` (liveness, last-tick age, span snapshot), and
//!   `/tenants` (JSON rollup) from a [`TelemetryHub`] the engine
//!   updates.
//! - [`SampledObserver`] — seeded run-level trace sampling
//!   ([`SamplePolicy`]) with exact kept/dropped accounting;
//!   [`SamplePolicy::All`] is bit-transparent.
//! - [`ObsEvent::Context`] correlation stamps (tenant / epoch / shard /
//!   outer round) let downstream consumers attribute interleaved event
//!   streams.
//!
//! Residual conventions (what "belief residual" means per backend):
//! grid beliefs report the L1 distance between successive cell-mass
//! vectors (in `[0, 2]`) plus the KL divergence of the new belief from the
//! old; particle and Gaussian beliefs report the belief-mean displacement
//! in meters. All residuals are deterministic functions of the beliefs, so
//! for the synchronous schedule they are bit-identical across thread
//! counts.

#![warn(missing_docs)]

pub mod accounting;
pub mod fold;
pub mod metrics;
pub mod observer;
pub mod profiler;
pub mod replay;
pub mod sampling;
pub mod sink;
pub mod telemetry;
pub mod trace;
pub mod window;

pub use wsnloc_net::accounting::CommStats;

pub use fold::{EventCounts, IterationMetrics, MetricsObserver, MetricsSnapshot};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use observer::{
    FanoutObserver, InferenceObserver, IterationRecord, NodeResidual, NullObserver, ObsEvent,
    RunInfo, RunSummary, SpanKind,
};
pub use profiler::{SpanGuard, SpanProfiler, SpanSnapshotRow, Stopwatch};
pub use replay::{
    analyze_str, parse_json, parse_jsonl, replay, JsonValue, ReplayError, TraceAnalysis,
};
pub use sampling::{SamplePolicy, SampledObserver};
pub use sink::{write_jsonl, JsonlSink, TraceSink, VecSink};
pub use telemetry::{TelemetryHub, TelemetryServer};
pub use trace::{RunTrace, TraceObserver};
pub use window::WindowedMetrics;
