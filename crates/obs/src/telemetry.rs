//! Embedded scrape endpoint: [`TelemetryHub`] + [`TelemetryServer`].
//!
//! Long-running engines need to answer "is it alive, and how fast is it
//! going" *while* they run, without a metrics dependency the build
//! environment does not have. This module hand-rolls the smallest
//! useful HTTP/1.1 surface over [`std::net::TcpListener`]:
//!
//! | route      | content                                             |
//! |------------|-----------------------------------------------------|
//! | `/metrics` | OpenMetrics text: [`MetricsRegistry`] totals plus [`WindowedMetrics`] windowed series, one `# EOF` |
//! | `/healthz` | JSON liveness: tick count, seconds since last tick, optional [`SpanProfiler`] snapshot rows |
//! | `/tenants` | JSON rollup the engine publishes per tick           |
//!
//! The server is deliberately primitive: blocking accept loop on one
//! thread, one request per connection, GET only. That is exactly enough
//! for `curl`, Prometheus-style scrapers, and `repro top`, and it keeps
//! the implementation auditable. Shutdown is cooperative: a flag flips,
//! then a loopback connection unblocks `accept` so the thread can exit
//! and be joined — no socket leaks, no detached threads at drop.
//!
//! The [`TelemetryHub`] is the engine-facing half: a cheaply clonable
//! bundle of registry + window + optional profiler that the engine
//! updates ([`TelemetryHub::note_tick`],
//! [`TelemetryHub::set_tenants_json`]) and the server reads. Engines
//! own a hub whether or not a server is attached, so instrumentation
//! cost does not depend on whether anyone is scraping.

use crate::metrics::MetricsRegistry;
use crate::profiler::{SpanProfiler, Stopwatch};
use crate::sink::push_json_str;
use crate::window::WindowedMetrics;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Debug, Default)]
struct HubState {
    /// Stopwatch restarted at every tick; `None` before the first.
    last_tick: Option<Stopwatch>,
    /// Engine-published JSON rollup served verbatim at `/tenants`.
    tenants_json: String,
}

/// Shared telemetry state: the bridge between a live engine (writer)
/// and a [`TelemetryServer`] (reader). Clone freely — all fields are
/// `Arc`s.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    registry: Arc<MetricsRegistry>,
    window: Arc<WindowedMetrics>,
    profiler: Option<Arc<SpanProfiler>>,
    ticks: Arc<AtomicU64>,
    state: Arc<Mutex<HubState>>,
}

impl TelemetryHub {
    /// A hub over the given registry and window, with no profiler.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>, window: Arc<WindowedMetrics>) -> Self {
        TelemetryHub {
            registry,
            window,
            profiler: None,
            ticks: Arc::new(AtomicU64::new(0)),
            state: Arc::new(Mutex::new(HubState::default())),
        }
    }

    /// Attaches a span profiler whose [`SpanProfiler::snapshot`] rows
    /// are embedded in `/healthz` (taken mid-run, never stopping spans).
    #[must_use]
    pub fn with_profiler(mut self, profiler: Arc<SpanProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    fn locked(&self) -> MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The metrics registry this hub exports.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The windowed-series tier this hub exports.
    #[must_use]
    pub fn window(&self) -> &Arc<WindowedMetrics> {
        &self.window
    }

    /// Records that the engine completed a scheduler tick (drives the
    /// `/healthz` last-tick age and tick counter).
    pub fn note_tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.locked().last_tick = Some(Stopwatch::start());
    }

    /// Ticks noted so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Seconds since the last [`TelemetryHub::note_tick`], or `None`
    /// before the first tick.
    #[must_use]
    pub fn last_tick_age_secs(&self) -> Option<f64> {
        self.locked()
            .last_tick
            .as_ref()
            .map(Stopwatch::elapsed_secs)
    }

    /// Publishes the JSON document `/tenants` serves. The engine owns
    /// the shape; the hub stores the string verbatim.
    pub fn set_tenants_json(&self, json: String) {
        self.locked().tenants_json = json;
    }

    /// Body for `/metrics`: registry exposition with the windowed
    /// series spliced in before the single trailing `# EOF`.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let mut text = self.registry.render_openmetrics();
        if let Some(stripped) = text.strip_suffix("# EOF\n") {
            text.truncate(stripped.len());
        }
        self.window.render_openmetrics_into(&mut text);
        text.push_str("# EOF\n");
        text
    }

    /// Body for `/healthz`: a small JSON liveness document. `ok` is
    /// true once the engine has ticked at least once.
    #[must_use]
    pub fn render_healthz(&self) -> String {
        use std::fmt::Write as _;
        let ticks = self.ticks();
        let age = self.last_tick_age_secs();
        let mut out = String::from("{");
        let _ = write!(out, "\"ok\":{}", ticks > 0);
        let _ = write!(out, ",\"ticks\":{ticks}");
        match age {
            Some(a) => {
                let _ = write!(out, ",\"last_tick_age_secs\":{a}");
            }
            None => out.push_str(",\"last_tick_age_secs\":null"),
        }
        if let Some(prof) = &self.profiler {
            out.push_str(",\"spans\":[");
            for (i, row) in prof.snapshot().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"depth\":{},\"calls\":{},\"total_secs\":{},\"self_secs\":{}}}",
                    json_str(row.label),
                    row.depth,
                    row.calls,
                    row.total_secs,
                    row.self_secs
                );
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Body for `/tenants` (empty object before the first publish).
    #[must_use]
    pub fn render_tenants(&self) -> String {
        let st = self.locked();
        if st.tenants_json.is_empty() {
            "{}".to_owned()
        } else {
            st.tenants_json.clone()
        }
    }
}

fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    push_json_str(&mut out, raw);
    out
}

/// The blocking scrape server (see module docs for routes). Bind with
/// [`TelemetryServer::start`]; port 0 picks a free port, reported by
/// [`TelemetryServer::local_addr`]. Stops (and joins its thread) on
/// [`TelemetryServer::shutdown`] or drop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `hub` from a
    /// background accept loop until shutdown.
    pub fn start(addr: &str, hub: TelemetryHub) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("wsnloc-telemetry".to_owned())
            .spawn(move || accept_loop(&listener, &hub, &stop_flag))?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway loopback connection; if that
        // fails the listener is already gone and the thread exits alone.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, hub: &TelemetryHub, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // One short-deadline request per connection: a stalled client
        // cannot wedge the scrape loop for long.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = serve_one(stream, hub);
    }
}

/// Reads one request head, routes it, writes one response.
fn serve_one(mut stream: TcpStream, hub: &TelemetryHub) -> std::io::Result<()> {
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The OpenMetrics media type; plain enough for curl too.
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                hub.render_metrics(),
            ),
            "/healthz" => ("200 OK", "application/json", hub.render_healthz()),
            "/tenants" => ("200 OK", "application/json", hub.render_tenants()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "routes: /metrics /healthz /tenants\n".to_owned(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> TelemetryHub {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("wsnloc_test", "test counter").add(3);
        let window = Arc::new(WindowedMetrics::new(4));
        window.add(
            "wsnloc_window_epochs_solved",
            &[("tenant", "1".to_owned())],
            2,
        );
        TelemetryHub::new(registry, window)
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn metrics_route_serves_registry_and_window_with_single_eof() {
        let mut server = TelemetryServer::start("127.0.0.1:0", hub()).expect("bind");
        let resp = get(server.local_addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.contains("application/openmetrics-text"));
        assert!(resp.contains("wsnloc_test_total 3"));
        assert!(resp.contains("wsnloc_window_epochs_solved{tenant=\"1\"} 2"));
        assert_eq!(resp.matches("# EOF").count(), 1);
        assert!(resp.trim_end().ends_with("# EOF"));
        server.shutdown();
    }

    #[test]
    fn healthz_reports_tick_age_and_spans() {
        let prof = Arc::new(SpanProfiler::new());
        prof.record_path(&["run"], 0.125);
        let h = hub().with_profiler(Arc::clone(&prof));
        let mut server = TelemetryServer::start("127.0.0.1:0", h.clone()).expect("bind");
        let before = get(server.local_addr(), "/healthz");
        assert!(before.contains("\"ok\":false"));
        assert!(before.contains("\"last_tick_age_secs\":null"));
        h.note_tick();
        let after = get(server.local_addr(), "/healthz");
        assert!(after.contains("\"ok\":true"));
        assert!(after.contains("\"ticks\":1"));
        assert!(after.contains("\"last_tick_age_secs\":"));
        assert!(after.contains("\"label\":\"run\""));
        server.shutdown();
    }

    #[test]
    fn tenants_route_serves_published_json_and_404s_elsewhere() {
        let h = hub();
        h.set_tenants_json("{\"tenants\":[{\"id\":1}]}".to_owned());
        let mut server = TelemetryServer::start("127.0.0.1:0", h).expect("bind");
        let tenants = get(server.local_addr(), "/tenants");
        assert!(tenants.contains("{\"tenants\":[{\"id\":1}]}"));
        let missing = get(server.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        server.shutdown();
        // Idempotent shutdown and clean drop.
        server.shutdown();
    }
}
