//! Seeded trace-sampling policies for high-volume observation.
//!
//! A [`TraceObserver`](crate::TraceObserver) recording every run of a
//! large streaming deployment grows without bound; dropping runs with
//! an *unseeded* coin would make two identical deployments disagree
//! about what they logged. [`SampledObserver`] sits between an
//! inference entry point and any downstream observer and decides — at
//! [`on_run_start`](InferenceObserver::on_run_start), from the run's
//! own seed — whether the whole run is forwarded or suppressed:
//!
//! - [`SamplePolicy::All`] forwards everything: downstream output is
//!   bit-identical to wiring the inner observer directly;
//! - [`SamplePolicy::HashRatio`]`(p)` keeps a run iff a splitmix64
//!   hash of `run_seed ^ sampler_seed` falls below `p` — a pure
//!   function of the seeds, so the kept set is identical across thread
//!   counts, batching, and replays;
//! - [`SamplePolicy::PerTenant`]`(k)` keeps the first `k` runs of each
//!   tenant (tenant identity is taken from the most recent
//!   [`ObsEvent::Context`] stamp; runs with no stamp share one
//!   "unattributed" bucket).
//!
//! Nothing is dropped silently: the observer counts kept and dropped
//! runs and the exact number of suppressed callbacks
//! ([`SampledObserver::dropped_events`]), so
//! `kept_events + dropped_events` always equals the number of
//! callbacks that arrived.

use crate::observer::{
    InferenceObserver, IterationRecord, ObsEvent, RunInfo, RunSummary, SpanKind,
};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Which runs a [`SampledObserver`] forwards downstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplePolicy {
    /// Forward every run (downstream sees a bit-identical stream).
    All,
    /// Keep the first `k` runs per tenant (per [`ObsEvent::Context`]
    /// stamp), then drop that tenant's runs.
    PerTenant(u64),
    /// Keep a run iff `hash(run_seed ^ sampler_seed)` maps below the
    /// given probability in `[0, 1]`. Deterministic in the seeds.
    HashRatio(f64),
}

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform fraction in `[0, 1)` using the top 53 bits.
fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Debug, Default)]
struct SampleState {
    /// Is the run in flight being forwarded?
    keep_current: bool,
    /// Tenant from the most recent `Context` stamp (None = unattributed).
    current_tenant: Option<u64>,
    /// Kept-run count per tenant bucket, for `PerTenant`.
    kept_per_tenant: BTreeMap<Option<u64>, u64>,
    kept_runs: u64,
    dropped_runs: u64,
    kept_events: u64,
    dropped_events: u64,
}

/// A sampling gate in front of another observer (see module docs).
///
/// The decision is made once per run at `on_run_start`; every callback
/// until the next `on_run_start` shares that run's fate. `Context`
/// stamps arriving *between* runs are treated as preamble for the next
/// run: their tenant id is recorded either way, and they are forwarded
/// only if the previous run was kept (under [`SamplePolicy::All`] that
/// is always, preserving bit-identity).
pub struct SampledObserver<'a> {
    inner: &'a dyn InferenceObserver,
    policy: SamplePolicy,
    seed: u64,
    state: Mutex<SampleState>,
}

impl std::fmt::Debug for SampledObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampledObserver")
            .field("policy", &self.policy)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl<'a> SampledObserver<'a> {
    /// Gates `inner` behind `policy`. `seed` perturbs the
    /// [`SamplePolicy::HashRatio`] hash so distinct samplers over the
    /// same runs keep independent subsets.
    pub fn new(inner: &'a dyn InferenceObserver, policy: SamplePolicy, seed: u64) -> Self {
        SampledObserver {
            inner,
            policy,
            seed,
            // `All` keeps pre-run preamble flowing before the first run.
            state: Mutex::new(SampleState {
                keep_current: matches!(policy, SamplePolicy::All),
                ..SampleState::default()
            }),
        }
    }

    fn locked(&self) -> MutexGuard<'_, SampleState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs forwarded downstream so far.
    #[must_use]
    pub fn kept_runs(&self) -> u64 {
        self.locked().kept_runs
    }

    /// Runs suppressed so far.
    #[must_use]
    pub fn dropped_runs(&self) -> u64 {
        self.locked().dropped_runs
    }

    /// Individual callbacks (iterations, spans, events) forwarded.
    #[must_use]
    pub fn kept_events(&self) -> u64 {
        self.locked().kept_events
    }

    /// Individual callbacks (iterations, spans, events) suppressed.
    /// Always exactly complements [`kept_events`](Self::kept_events).
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.locked().dropped_events
    }

    /// Would this sampler keep a run with the given seed, were it to
    /// start now? Pure for `All`/`HashRatio`; for `PerTenant` the
    /// answer depends on (and does not change) accumulated state.
    #[must_use]
    pub fn would_keep(&self, run_seed: u64) -> bool {
        match self.policy {
            SamplePolicy::All => true,
            SamplePolicy::HashRatio(p) => {
                unit_fraction(splitmix64(run_seed ^ self.seed)) < p.clamp(0.0, 1.0)
            }
            SamplePolicy::PerTenant(k) => {
                let st = self.locked();
                st.kept_per_tenant
                    .get(&st.current_tenant)
                    .copied()
                    .unwrap_or(0)
                    < k
            }
        }
    }
}

impl InferenceObserver for SampledObserver<'_> {
    fn wants_residuals(&self) -> bool {
        self.inner.wants_residuals()
    }

    fn on_run_start(&self, info: &RunInfo) {
        let keep = self.would_keep(info.seed);
        let mut st = self.locked();
        st.keep_current = keep;
        if keep {
            let bucket = st.current_tenant;
            *st.kept_per_tenant.entry(bucket).or_insert(0) += 1;
            st.kept_runs += 1;
            st.kept_events += 1;
            drop(st);
            self.inner.on_run_start(info);
        } else {
            st.dropped_runs += 1;
            st.dropped_events += 1;
        }
    }

    fn on_iteration(&self, record: &IterationRecord) {
        let mut st = self.locked();
        if st.keep_current {
            st.kept_events += 1;
            drop(st);
            self.inner.on_iteration(record);
        } else {
            st.dropped_events += 1;
        }
    }

    fn on_span(&self, span: SpanKind, secs: f64) {
        let mut st = self.locked();
        if st.keep_current {
            st.kept_events += 1;
            drop(st);
            self.inner.on_span(span, secs);
        } else {
            st.dropped_events += 1;
        }
    }

    fn on_event(&self, event: &ObsEvent) {
        let mut st = self.locked();
        if let ObsEvent::Context { tenant, .. } = event {
            // Always note tenant identity — the *next* run's PerTenant
            // bucket depends on it even if this stream is suppressed.
            st.current_tenant = *tenant;
        }
        if st.keep_current {
            st.kept_events += 1;
            drop(st);
            self.inner.on_event(event);
        } else {
            st.dropped_events += 1;
        }
    }

    fn on_run_end(&self, summary: &RunSummary) {
        let mut st = self.locked();
        if st.keep_current {
            st.kept_events += 1;
            drop(st);
            self.inner.on_run_end(summary);
        } else {
            st.dropped_events += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceObserver;

    fn info(seed: u64) -> RunInfo {
        RunInfo {
            backend: "particle",
            nodes: 4,
            free: 3,
            edges: 5,
            max_iterations: 3,
            tolerance: 1e-3,
            damping: 0.0,
            schedule: "synchronous",
            message_bytes: 0,
            seed,
        }
    }

    fn drive(obs: &dyn InferenceObserver, seed: u64) {
        obs.on_run_start(&info(seed));
        obs.on_iteration(&IterationRecord {
            iteration: 0,
            max_shift: 0.5,
            comm: wsnloc_net::accounting::CommStats {
                messages: 12,
                bytes: 0,
            },
            damping: 0.0,
            schedule: "synchronous",
            secs: 0.0,
            residuals: Vec::new(),
        });
        obs.on_event(&ObsEvent::Note {
            message: format!("run {seed}"),
        });
        obs.on_run_end(&RunSummary {
            iterations: 1,
            converged: true,
            comm: wsnloc_net::accounting::CommStats {
                messages: 12,
                bytes: 0,
            },
        });
    }

    #[test]
    fn all_policy_is_transparent() {
        let direct = TraceObserver::new();
        let sampled_inner = TraceObserver::new();
        let sampled = SampledObserver::new(&sampled_inner, SamplePolicy::All, 99);
        for seed in 0..8u64 {
            drive(&direct, seed);
            drive(&sampled, seed);
        }
        assert_eq!(
            format!("{:?}", direct.runs()),
            format!("{:?}", sampled_inner.runs())
        );
        assert_eq!(sampled.kept_runs(), 8);
        assert_eq!(sampled.dropped_runs(), 0);
        assert_eq!(sampled.dropped_events(), 0);
    }

    #[test]
    fn hash_ratio_is_deterministic_and_accounted() {
        let keep_sets: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                let inner = TraceObserver::new();
                let sampled = SampledObserver::new(&inner, SamplePolicy::HashRatio(0.5), 7);
                let mut total_callbacks = 0u64;
                for seed in 0..64u64 {
                    drive(&sampled, seed);
                    total_callbacks += 4;
                }
                assert_eq!(
                    sampled.kept_events() + sampled.dropped_events(),
                    total_callbacks
                );
                assert_eq!(sampled.kept_runs() + sampled.dropped_runs(), 64);
                inner.runs().iter().map(|r| r.info.seed).collect()
            })
            .collect();
        assert_eq!(keep_sets[0], keep_sets[1]);
        assert_eq!(keep_sets[1], keep_sets[2]);
        // p = 0.5 over 64 seeds should keep some and drop some.
        assert!(!keep_sets[0].is_empty());
        assert!(keep_sets[0].len() < 64);
    }

    #[test]
    fn hash_ratio_extremes() {
        let inner = TraceObserver::new();
        let none = SampledObserver::new(&inner, SamplePolicy::HashRatio(0.0), 1);
        let all = SampledObserver::new(&inner, SamplePolicy::HashRatio(1.0), 1);
        for seed in 0..32u64 {
            assert!(!none.would_keep(seed));
            assert!(all.would_keep(seed));
        }
    }

    #[test]
    fn per_tenant_keeps_first_k_per_context_stamp() {
        let inner = TraceObserver::new();
        let sampled = SampledObserver::new(&inner, SamplePolicy::PerTenant(2), 0);
        for tenant in [3u64, 9] {
            for run in 0..4u64 {
                sampled.on_event(&ObsEvent::Context {
                    tenant: Some(tenant),
                    epoch: Some(run),
                    shard: None,
                    round: None,
                });
                drive(&sampled, tenant * 100 + run);
            }
        }
        // Two runs kept per tenant, two dropped per tenant.
        assert_eq!(sampled.kept_runs(), 4);
        assert_eq!(sampled.dropped_runs(), 4);
        let kept: Vec<u64> = inner.runs().iter().map(|r| r.info.seed).collect();
        assert_eq!(kept, vec![300, 301, 900, 901]);
    }
}
