//! Offline trace analytics: parse `trace.jsonl` back into [`RunTrace`]s
//! and replay them through any [`InferenceObserver`].
//!
//! This is the other half of the one-analytics-path invariant: the
//! [`write_jsonl`](crate::write_jsonl) encoder and this parser are
//! exact inverses for every finite value (Rust prints f64 in
//! shortest-round-trip form and parses it back correctly rounded), and
//! the [`MetricsObserver`](crate::MetricsObserver) fold is
//! order-insensitive, so replaying a recorded trace reproduces the live
//! run's metrics snapshot exactly. `repro analyze` is a thin CLI over
//! [`analyze_str`].
//!
//! The parser is hand-rolled (no serde in the build environment) and
//! *tolerant in the forward direction*: unknown record types, span
//! labels, and event names are skipped so newer traces still analyze,
//! while malformed JSON reports the offending line.

use crate::fold::{MetricsObserver, MetricsSnapshot};
use crate::observer::{
    FanoutObserver, InferenceObserver, IterationRecord, NodeResidual, ObsEvent, RunInfo,
    RunSummary, SpanKind,
};
use crate::profiler::SpanProfiler;
use crate::trace::RunTrace;
use std::fmt;
use wsnloc_net::accounting::CommStats;

/// A parse failure, located by 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ReplayError {}

/// A parsed JSON value. Integers that fit `u64` are kept exact
/// ([`JsonValue::Int`]); everything else numeric is `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token that fits `u64`, kept exact (seeds
    /// and counts survive the round trip bit for bit).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64`; integers widen, `null` becomes NaN (the
    /// encoder writes non-finite floats as `null`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> PResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> PResult<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> PResult<JsonValue> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> PResult<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_owned())?;
        if integral && !tok.starts_with('-') {
            if let Ok(v) = tok.parse::<u64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        tok.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{tok}'"))
    }

    fn string(&mut self) -> PResult<String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos = end;
                            // Surrogates (paired or lone) are replaced; the
                            // encoder never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let char_start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = char_start + len;
                    let chunk = self
                        .bytes
                        .get(char_start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| "invalid utf8 in string".to_owned())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> PResult<JsonValue> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> PResult<JsonValue> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// Length in bytes of a UTF-8 character starting with `lead`.
fn utf8_len(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

/// Parses one JSON document (used for trace lines and the pinned bench
/// JSON files).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at offset {}", p.pos));
    }
    Ok(v)
}

/// Interning tables: trace strings back to the `&'static str`s the
/// observer structs carry. Unknown names map to `"unknown"` rather than
/// failing, so newer traces still replay.
fn intern_backend(s: &str) -> &'static str {
    match s {
        "particle" => "particle",
        "grid" => "grid",
        "gaussian" => "gaussian",
        "discrete" => "discrete",
        _ => "unknown",
    }
}

fn intern_schedule(s: &str) -> &'static str {
    match s {
        "synchronous" => "synchronous",
        "sweep" => "sweep",
        _ => "unknown",
    }
}

fn intern_stage(s: &str) -> &'static str {
    match s {
        "kernel" => "kernel",
        "point" => "point",
        _ => "unknown",
    }
}

fn intern_method(s: &str) -> &'static str {
    match s {
        "enumeration" => "enumeration",
        "variable_elimination" => "variable_elimination",
        "likelihood_weighting" => "likelihood_weighting",
        _ => "unknown",
    }
}

fn span_kind(label: &str) -> Option<SpanKind> {
    match label {
        "model_build" => Some(SpanKind::ModelBuild),
        "prior_init" => Some(SpanKind::PriorInit),
        "message_passing" => Some(SpanKind::MessagePassing),
        "estimate_extract" => Some(SpanKind::EstimateExtract),
        _ => None,
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn field_str<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn parse_run_start(v: &JsonValue) -> Result<RunInfo, String> {
    Ok(RunInfo {
        backend: intern_backend(field_str(v, "backend")?),
        nodes: field_usize(v, "nodes")?,
        free: field_usize(v, "free")?,
        edges: field_usize(v, "edges")?,
        max_iterations: field_usize(v, "max_iterations")?,
        tolerance: field_f64(v, "tolerance")?,
        damping: field_f64(v, "damping")?,
        schedule: intern_schedule(field_str(v, "schedule")?),
        message_bytes: field_u64(v, "message_bytes")?,
        seed: field_u64(v, "seed")?,
    })
}

fn parse_iteration(v: &JsonValue) -> Result<IterationRecord, String> {
    let residuals = match v.get("residuals").and_then(JsonValue::as_arr) {
        Some(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let kl = match item.get("kl") {
                    None | Some(JsonValue::Null) => None,
                    Some(other) => other.as_f64(),
                };
                out.push(NodeResidual {
                    node: field_usize(item, "node")?,
                    residual: field_f64(item, "residual")?,
                    kl,
                });
            }
            out
        }
        None => Vec::new(),
    };
    Ok(IterationRecord {
        iteration: field_usize(v, "iter")?,
        max_shift: field_f64(v, "max_shift")?,
        comm: CommStats {
            messages: field_u64(v, "messages")?,
            bytes: field_u64(v, "bytes")?,
        },
        damping: field_f64(v, "damping")?,
        schedule: intern_schedule(field_str(v, "schedule")?),
        secs: field_f64(v, "secs")?,
        residuals,
    })
}

fn parse_event(v: &JsonValue) -> Result<Option<ObsEvent>, String> {
    let event = match field_str(v, "event")? {
        "map_fallback_to_mmse" => Some(ObsEvent::MapFallbackToMmse {
            backend: intern_backend(field_str(v, "backend")?),
        }),
        "grid_uniform_fallback" => Some(ObsEvent::GridUniformFallback {
            edge: field_usize(v, "edge")?,
            stage: intern_stage(field_str(v, "stage")?),
        }),
        "thread_pool_fallback" => Some(ObsEvent::ThreadPoolFallback {
            requested: field_usize(v, "requested")?,
            error: field_str(v, "error")?.to_owned(),
        }),
        "message_dropped" => Some(ObsEvent::MessageDropped {
            iteration: field_usize(v, "iteration")?,
            count: field_u64(v, "count")?,
        }),
        "node_died" => Some(ObsEvent::NodeDied {
            iteration: field_usize(v, "iteration")?,
            node: field_usize(v, "node")?,
        }),
        "stale_message_used" => Some(ObsEvent::StaleMessageUsed {
            iteration: field_usize(v, "iteration")?,
            count: field_u64(v, "count")?,
        }),
        "discrete_query" => Some(ObsEvent::DiscreteQuery {
            method: intern_method(field_str(v, "method")?),
            variables: field_usize(v, "variables")?,
            samples: field_u64(v, "samples")?,
        }),
        "epoch_advanced" => Some(ObsEvent::EpochAdvanced {
            tenant: field_u64(v, "tenant")?,
            epoch: field_u64(v, "epoch")?,
        }),
        "tenant_shed" => Some(ObsEvent::TenantShed {
            tenant: field_u64(v, "tenant")?,
            epoch: field_u64(v, "epoch")?,
        }),
        "context" => {
            let opt = |key: &str| v.get(key).and_then(JsonValue::as_u64);
            Some(ObsEvent::Context {
                tenant: opt("tenant"),
                epoch: opt("epoch"),
                shard: opt("shard"),
                round: opt("round"),
            })
        }
        "boundary_exchange" => Some(ObsEvent::BoundaryExchange {
            round: field_usize(v, "round")?,
            shard: field_usize(v, "shard")?,
            messages: field_u64(v, "messages")?,
        }),
        "note" => Some(ObsEvent::Note {
            message: field_str(v, "message")?.to_owned(),
        }),
        _ => None, // forward compatibility: unknown events are skipped
    };
    Ok(event)
}

/// Parses a JSONL trace (the [`write_jsonl`](crate::write_jsonl)
/// schema) back into [`RunTrace`]s. Blank lines are skipped; a run
/// without a `run_end` record parses with `summary: None` (exactly
/// what a run interrupted by a panic leaves behind).
pub fn parse_jsonl(text: &str) -> Result<Vec<RunTrace>, ReplayError> {
    let mut runs: Vec<RunTrace> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: String| ReplayError { line: lineno, msg };
        let v = parse_json(line).map_err(at)?;
        let kind = field_str(&v, "type").map_err(at)?.to_owned();
        if kind == "run_start" {
            runs.push(RunTrace {
                info: parse_run_start(&v).map_err(at)?,
                iterations: Vec::new(),
                spans: Vec::new(),
                events: Vec::new(),
                summary: None,
            });
            continue;
        }
        let Some(run) = runs.last_mut() else {
            return Err(at(format!("'{kind}' record before any run_start")));
        };
        match kind.as_str() {
            "iteration" => run.iterations.push(parse_iteration(&v).map_err(at)?),
            "span" => {
                let label = field_str(&v, "span").map_err(at)?;
                if let Some(kind) = span_kind(label) {
                    run.spans.push((kind, field_f64(&v, "secs").map_err(at)?));
                }
                // Unknown span labels are skipped (forward compat).
            }
            "event" => {
                if let Some(event) = parse_event(&v).map_err(at)? {
                    run.events.push(event);
                }
            }
            "run_end" => {
                run.summary = Some(RunSummary {
                    iterations: field_usize(&v, "iterations").map_err(at)?,
                    converged: v
                        .get("converged")
                        .and_then(JsonValue::as_bool)
                        .ok_or_else(|| at("missing field 'converged'".to_owned()))?,
                    comm: CommStats {
                        messages: field_u64(&v, "messages").map_err(at)?,
                        bytes: field_u64(&v, "bytes").map_err(at)?,
                    },
                });
            }
            _ => {} // unknown record types are skipped
        }
    }
    Ok(runs)
}

/// Feeds recorded runs through `obs` exactly as a live engine would:
/// `run_start`, iterations, spans, events, then `run_end` per run.
pub fn replay(runs: &[RunTrace], obs: &dyn InferenceObserver) {
    for run in runs {
        obs.on_run_start(&run.info);
        for rec in &run.iterations {
            obs.on_iteration(rec);
        }
        for &(span, secs) in &run.spans {
            obs.on_span(span, secs);
        }
        for event in &run.events {
            obs.on_event(event);
        }
        if let Some(sum) = run.summary {
            obs.on_run_end(&sum);
        }
    }
}

/// The result of analyzing a trace offline: the same snapshot a live
/// [`MetricsObserver`] would have produced, plus rendered artifacts.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Runs found in the trace.
    pub runs: usize,
    /// Runs that never reported a `run_end` (interrupted).
    pub incomplete_runs: usize,
    /// The replayed metrics fold.
    pub snapshot: MetricsSnapshot,
    /// Hierarchical span attribution over all runs.
    pub flame_table: String,
    /// OpenMetrics rendering of the replayed registry.
    pub openmetrics: String,
}

/// Parses a JSONL trace and replays it into a fresh
/// [`MetricsObserver`] + [`SpanProfiler`] pair — the one analytics path
/// shared with live runs.
pub fn analyze_str(text: &str) -> Result<TraceAnalysis, ReplayError> {
    let runs = parse_jsonl(text)?;
    let metrics = MetricsObserver::new();
    let profiler = SpanProfiler::new();
    let fan = FanoutObserver::new(vec![&metrics, &profiler]);
    replay(&runs, &fan);
    Ok(TraceAnalysis {
        runs: runs.len(),
        incomplete_runs: runs.iter().filter(|r| r.summary.is_none()).count(),
        snapshot: metrics.snapshot(),
        flame_table: profiler.flame_table(),
        openmetrics: metrics.registry().render_openmetrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{write_jsonl, VecSink};

    fn sample_trace() -> Vec<RunTrace> {
        vec![RunTrace {
            info: RunInfo {
                backend: "grid",
                nodes: 9,
                free: 7,
                edges: 12,
                max_iterations: 4,
                tolerance: 0.125,
                damping: 0.25,
                schedule: "synchronous",
                message_bytes: 40,
                seed: u64::MAX, // exercises exact u64 round-tripping
            },
            iterations: vec![IterationRecord {
                iteration: 0,
                max_shift: 2.5e-3,
                comm: CommStats {
                    messages: 14,
                    bytes: 560,
                },
                damping: 0.25,
                schedule: "synchronous",
                secs: 0.0017,
                residuals: vec![
                    NodeResidual {
                        node: 1,
                        residual: 0.1 + 0.2, // a value with no short decimal
                        kl: Some(0.034),
                    },
                    NodeResidual {
                        node: 2,
                        residual: 1.5,
                        kl: None,
                    },
                ],
            }],
            spans: vec![
                (SpanKind::PriorInit, 0.004),
                (SpanKind::MessagePassing, 0.02),
            ],
            events: vec![
                ObsEvent::MessageDropped {
                    iteration: 0,
                    count: 3,
                },
                ObsEvent::Note {
                    message: "say \"hi\"\n".to_owned(),
                },
            ],
            summary: Some(RunSummary {
                iterations: 1,
                converged: false,
                comm: CommStats {
                    messages: 14,
                    bytes: 560,
                },
            }),
        }]
    }

    #[test]
    fn jsonl_round_trips_bit_exactly() {
        let runs = sample_trace();
        let mut sink = VecSink::new();
        write_jsonl(&runs, &mut sink).expect("in-memory serialize");
        let text = sink.lines.join("\n");
        let parsed = parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, runs);
    }

    #[test]
    fn json_parser_handles_escapes_and_types() {
        let v =
            parse_json(r#"{"a":[1,2.5,null,true,"x\n\"yA"],"b":{"c":-3}}"#).expect("valid json");
        let arr = v.get("a").and_then(JsonValue::as_arr).expect("array");
        assert_eq!(arr[0], JsonValue::Int(1));
        assert_eq!(arr[1], JsonValue::Num(2.5));
        assert_eq!(arr[2], JsonValue::Null);
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4].as_str(), Some("x\n\"yA"));
        let c = v.get("b").and_then(|b| b.get("c")).expect("nested");
        assert_eq!(c.as_f64(), Some(-3.0));
        assert!(c.as_u64().is_none(), "negative numbers are not u64");
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn incomplete_runs_parse_without_summary() {
        let runs = {
            let mut r = sample_trace();
            r[0].summary = None;
            r
        };
        let mut sink = VecSink::new();
        write_jsonl(&runs, &mut sink).expect("serialize");
        let parsed = parse_jsonl(&sink.lines.join("\n")).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].summary.is_none());
        let analysis = analyze_str(&sink.lines.join("\n")).expect("analyze");
        assert_eq!(analysis.incomplete_runs, 1);
    }

    #[test]
    fn malformed_lines_report_the_line_number() {
        let err =
            parse_jsonl("{\"type\":\"run_start\",\"backend\":\"grid\"").expect_err("truncated");
        assert_eq!(err.line, 1);
        let err = parse_jsonl("\n{\"type\":\"iteration\",\"iter\":0}").expect_err("orphan record");
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("run_start"));
    }

    #[test]
    fn analyze_matches_a_live_fold() {
        let runs = sample_trace();
        // Live: feed the observer directly.
        let live = MetricsObserver::new();
        replay(&runs, &live);
        // Offline: serialize, parse, replay.
        let mut sink = VecSink::new();
        write_jsonl(&runs, &mut sink).expect("serialize");
        let analysis = analyze_str(&sink.lines.join("\n")).expect("analyze");
        assert_eq!(analysis.snapshot, live.snapshot());
        assert_eq!(analysis.runs, 1);
        assert!(analysis.flame_table.contains("message_passing"));
        assert!(analysis.openmetrics.ends_with("# EOF\n"));
    }
}
