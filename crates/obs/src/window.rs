//! Sliding-window metric aggregation for live engines.
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) counters are
//! monotone totals — ideal for post-run scraping, useless for "what is
//! the shed rate *right now*" questions a long-running service gets
//! asked. [`WindowedMetrics`] layers fixed-slot ring buffers on top:
//! every series keeps the last `slots` slots of data, the engine calls
//! [`WindowedMetrics::advance`] once per scheduler tick to rotate the
//! ring, and queries ([`window_total`](WindowedMetrics::window_total),
//! [`window_rate`](WindowedMetrics::window_rate),
//! [`window_quantile`](WindowedMetrics::window_quantile)) see only the
//! window.
//!
//! Series are keyed by a family name plus a sorted label set (tenant
//! and shard ids in practice), and come in three kinds, chosen by the
//! first call that touches the series:
//!
//! - **rate** ([`add`](WindowedMetrics::add)): per-slot `u64` sums —
//!   epochs solved, epochs shed, boundary messages, fault counts;
//! - **gauge** ([`set`](WindowedMetrics::set)): last-write-wins `f64` —
//!   queue depths;
//! - **pool** ([`observe`](WindowedMetrics::observe)): per-slot `f64`
//!   samples pooled for window quantiles — tick latency.
//!
//! Slot rotation is driven by the *caller's* tick, never by wall
//! clock, so the aggregation is deterministic for a given call
//! sequence and costs nothing when nobody ticks it.
//!
//! The type also implements [`InferenceObserver`] so it can ride a
//! [`FanoutObserver`](crate::FanoutObserver) into live runs:
//! [`fold_event`](WindowedMetrics::fold_event) maps the structured
//! event stream (tenant epochs, shed decisions, per-shard
//! [`ObsEvent::BoundaryExchange`] traffic, fault events) onto labeled
//! window series.

use crate::metrics::escape_label_value;
use crate::observer::{InferenceObserver, ObsEvent, RunInfo};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A series key: family name plus sorted `(label, value)` pairs.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug)]
enum SeriesData {
    /// Per-slot sums (counter-over-window semantics).
    Rate(Vec<u64>),
    /// Last written value (point-in-time semantics).
    Gauge(f64),
    /// Per-slot sample pools (quantile-over-window semantics).
    Pool(Vec<Vec<f64>>),
}

#[derive(Debug, Default)]
struct WinState {
    /// Current ring position every write lands in.
    head: usize,
    /// Total [`WindowedMetrics::advance`] calls, for fill accounting.
    advances: u64,
    series: BTreeMap<SeriesKey, SeriesData>,
}

/// Fixed-slot ring-buffer aggregation over labeled metric series.
///
/// Thread-safe behind one mutex: writes are O(label-set) map lookups on
/// the engine's (cold, per-tick) path, never inside BP inner loops.
#[derive(Debug)]
pub struct WindowedMetrics {
    slots: usize,
    state: Mutex<WinState>,
}

impl WindowedMetrics {
    /// A window of `slots` ring slots (clamped to at least 1). One slot
    /// is "the current tick"; [`advance`](WindowedMetrics::advance)
    /// retires the oldest.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        WindowedMetrics {
            slots: slots.max(1),
            state: Mutex::new(WinState::default()),
        }
    }

    /// Ring slots this window was built with.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    fn locked(&self) -> MutexGuard<'_, WinState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn key(name: &str, labels: &[(&str, String)]) -> SeriesKey {
        let mut ls: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        ls.sort();
        (name.to_owned(), ls)
    }

    /// Adds `v` to the rate series `name{labels}` in the current slot.
    pub fn add(&self, name: &str, labels: &[(&str, String)], v: u64) {
        let mut st = self.locked();
        let head = st.head;
        let slots = self.slots;
        let data = st
            .series
            .entry(Self::key(name, labels))
            .or_insert_with(|| SeriesData::Rate(vec![0; slots]));
        if let SeriesData::Rate(ring) = data {
            ring[head] += v;
        }
    }

    /// Sets the gauge series `name{labels}` to `v`.
    pub fn set(&self, name: &str, labels: &[(&str, String)], v: f64) {
        let mut st = self.locked();
        let data = st
            .series
            .entry(Self::key(name, labels))
            .or_insert(SeriesData::Gauge(0.0));
        if let SeriesData::Gauge(cur) = data {
            *cur = v;
        }
    }

    /// Appends sample `v` to the pool series `name{labels}` in the
    /// current slot.
    pub fn observe(&self, name: &str, labels: &[(&str, String)], v: f64) {
        let mut st = self.locked();
        let head = st.head;
        let slots = self.slots;
        let data = st
            .series
            .entry(Self::key(name, labels))
            .or_insert_with(|| SeriesData::Pool(vec![Vec::new(); slots]));
        if let SeriesData::Pool(ring) = data {
            ring[head].push(v);
        }
    }

    /// Rotates the ring: the oldest slot of every series is cleared and
    /// becomes the new current slot. Engines call this once per tick.
    pub fn advance(&self) {
        let mut st = self.locked();
        st.advances += 1;
        st.head = (st.head + 1) % self.slots;
        let head = st.head;
        for data in st.series.values_mut() {
            match data {
                SeriesData::Rate(ring) => ring[head] = 0,
                SeriesData::Pool(ring) => ring[head].clear(),
                SeriesData::Gauge(_) => {}
            }
        }
    }

    /// Slots currently carrying data: the window is partially filled
    /// until `slots - 1` advances have happened.
    #[must_use]
    pub fn filled_slots(&self) -> usize {
        let st = self.locked();
        ((st.advances + 1).min(self.slots as u64)) as usize
    }

    /// Windowed total of a rate series, or `None` if the series does
    /// not exist (or is not a rate).
    #[must_use]
    pub fn window_total(&self, name: &str, labels: &[(&str, String)]) -> Option<u64> {
        let st = self.locked();
        match st.series.get(&Self::key(name, labels)) {
            Some(SeriesData::Rate(ring)) => Some(ring.iter().sum()),
            _ => None,
        }
    }

    /// Windowed per-slot rate of a rate series: total over the window
    /// divided by the filled slot count.
    #[must_use]
    pub fn window_rate(&self, name: &str, labels: &[(&str, String)]) -> Option<f64> {
        let total = self.window_total(name, labels)?;
        Some(total as f64 / self.filled_slots() as f64)
    }

    /// Nearest-rank quantile `q` in `[0, 1]` over every sample in the
    /// window of a pool series.
    #[must_use]
    pub fn window_quantile(&self, name: &str, labels: &[(&str, String)], q: f64) -> Option<f64> {
        let st = self.locked();
        let Some(SeriesData::Pool(ring)) = st.series.get(&Self::key(name, labels)) else {
            return None;
        };
        let mut pool: Vec<f64> = ring.iter().flatten().copied().collect();
        drop(st);
        if pool.is_empty() {
            return None;
        }
        pool.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * pool.len() as f64).ceil() as usize).clamp(1, pool.len());
        Some(pool[rank - 1])
    }

    /// Last value of a gauge series.
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &[(&str, String)]) -> Option<f64> {
        let st = self.locked();
        match st.series.get(&Self::key(name, labels)) {
            Some(SeriesData::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Folds one structured event into the windowed series the live
    /// telemetry endpoints expose (see module docs for the mapping).
    pub fn fold_event(&self, event: &ObsEvent) {
        match event {
            ObsEvent::EpochAdvanced { tenant, .. } => {
                self.add(
                    "wsnloc_window_epochs_solved",
                    &[("tenant", tenant.to_string())],
                    1,
                );
            }
            ObsEvent::TenantShed { tenant, .. } => {
                self.add(
                    "wsnloc_window_epochs_shed",
                    &[("tenant", tenant.to_string())],
                    1,
                );
            }
            ObsEvent::BoundaryExchange {
                shard, messages, ..
            } => {
                self.add(
                    "wsnloc_window_boundary_messages",
                    &[("shard", shard.to_string())],
                    *messages,
                );
            }
            ObsEvent::MessageDropped { count, .. } => {
                self.add("wsnloc_window_fault_dropped", &[], *count);
            }
            ObsEvent::StaleMessageUsed { count, .. } => {
                self.add("wsnloc_window_fault_stale", &[], *count);
            }
            ObsEvent::NodeDied { .. } => {
                self.add("wsnloc_window_node_deaths", &[], 1);
            }
            ObsEvent::GridUniformFallback { .. } => {
                self.add("wsnloc_window_grid_fallbacks", &[], 1);
            }
            // Context stamps carry no quantity; remaining events have no
            // windowed series (the registry totals still count them).
            _ => {}
        }
    }

    /// Appends the windowed series to an OpenMetrics exposition (the
    /// caller owns the trailing `# EOF`). Rate series render as gauges
    /// holding the windowed total, gauges verbatim, pools as summaries
    /// with `quantile="0.5|0.9|0.99"` plus `_count`/`_sum`.
    pub fn render_openmetrics_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let st = self.locked();
        // Group samples by family name (BTreeMap keys are sorted, so
        // families and their label sets come out in deterministic order).
        let mut last_family = "";
        let fmt_labels = |labels: &[(String, String)]| -> String {
            if labels.is_empty() {
                return String::new();
            }
            let inner: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        };
        for ((name, labels), data) in &st.series {
            match data {
                SeriesData::Rate(ring) => {
                    if last_family != name {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                        let _ = writeln!(
                            out,
                            "# HELP {name} sliding-window total over {} slots",
                            self.slots
                        );
                    }
                    let total: u64 = ring.iter().sum();
                    let _ = writeln!(out, "{name}{} {total}", fmt_labels(labels));
                }
                SeriesData::Gauge(v) => {
                    if last_family != name {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                    }
                    let _ = writeln!(out, "{name}{} {v}", fmt_labels(labels));
                }
                SeriesData::Pool(ring) => {
                    if last_family != name {
                        let _ = writeln!(out, "# TYPE {name} summary");
                        if let Some(unit) = crate::metrics::unit_for_name(name) {
                            let _ = writeln!(out, "# UNIT {name} {unit}");
                        }
                        let _ = writeln!(
                            out,
                            "# HELP {name} sliding-window quantiles over {} slots",
                            self.slots
                        );
                    }
                    let mut pool: Vec<f64> = ring.iter().flatten().copied().collect();
                    pool.sort_by(f64::total_cmp);
                    let pick = |q: f64| -> f64 {
                        if pool.is_empty() {
                            return f64::NAN;
                        }
                        let rank = ((q * pool.len() as f64).ceil() as usize).clamp(1, pool.len());
                        pool[rank - 1]
                    };
                    let base = fmt_labels(labels);
                    for q in ["0.5", "0.9", "0.99"] {
                        let qv: f64 = q.parse().unwrap_or(0.5);
                        let mut with_q: Vec<(String, String)> = labels.clone();
                        with_q.push(("quantile".to_owned(), q.to_owned()));
                        with_q.sort();
                        let _ = writeln!(out, "{name}{} {}", fmt_labels(&with_q), pick(qv));
                    }
                    let _ = writeln!(out, "{name}_count{base} {}", pool.len());
                    let _ = writeln!(out, "{name}_sum{base} {}", pool.iter().sum::<f64>());
                }
            }
            last_family = name;
        }
    }
}

/// Observer adapter: events fold into the window; everything else is a
/// no-op (per-iteration data is too fine-grained for tick-paced slots).
impl InferenceObserver for WindowedMetrics {
    fn on_run_start(&self, _info: &RunInfo) {
        self.add("wsnloc_window_bp_runs", &[], 1);
    }

    fn on_event(&self, event: &ObsEvent) {
        self.fold_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(t: u64) -> Vec<(&'static str, String)> {
        vec![("tenant", t.to_string())]
    }

    #[test]
    fn rates_retire_with_the_window() {
        let w = WindowedMetrics::new(3);
        w.add("wsnloc_window_epochs_solved", &tenant(1), 2);
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &tenant(1)),
            Some(2)
        );
        w.advance();
        w.add("wsnloc_window_epochs_solved", &tenant(1), 3);
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &tenant(1)),
            Some(5)
        );
        // Two more advances push the first slot out of the window.
        w.advance();
        w.advance();
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &tenant(1)),
            Some(3)
        );
        // Per-tenant isolation: tenant 2 has its own series.
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &tenant(2)),
            None
        );
    }

    #[test]
    fn quantiles_pool_across_slots() {
        let w = WindowedMetrics::new(4);
        for v in [0.1, 0.2] {
            w.observe("wsnloc_window_tick_seconds", &[], v);
        }
        w.advance();
        for v in [0.3, 0.4] {
            w.observe("wsnloc_window_tick_seconds", &[], v);
        }
        let p50 = w
            .window_quantile("wsnloc_window_tick_seconds", &[], 0.5)
            .expect("samples present");
        assert!((p50 - 0.2).abs() < 1e-12);
        let p99 = w
            .window_quantile("wsnloc_window_tick_seconds", &[], 0.99)
            .expect("samples present");
        assert!((p99 - 0.4).abs() < 1e-12);
        assert_eq!(w.filled_slots(), 2);
        let rate = w.window_rate("wsnloc_window_tick_seconds", &[]);
        assert!(rate.is_none(), "pools have no rate");
    }

    #[test]
    fn events_fold_into_labeled_series() {
        let w = WindowedMetrics::new(8);
        w.fold_event(&ObsEvent::EpochAdvanced {
            tenant: 3,
            epoch: 0,
        });
        w.fold_event(&ObsEvent::TenantShed {
            tenant: 3,
            epoch: 1,
        });
        w.fold_event(&ObsEvent::BoundaryExchange {
            round: 0,
            shard: 5,
            messages: 17,
        });
        w.fold_event(&ObsEvent::MessageDropped {
            iteration: 2,
            count: 4,
        });
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &tenant(3)),
            Some(1)
        );
        assert_eq!(
            w.window_total("wsnloc_window_epochs_shed", &tenant(3)),
            Some(1)
        );
        assert_eq!(
            w.window_total(
                "wsnloc_window_boundary_messages",
                &[("shard", "5".to_owned())]
            ),
            Some(17)
        );
        assert_eq!(w.window_total("wsnloc_window_fault_dropped", &[]), Some(4));
    }

    #[test]
    fn render_is_sorted_and_labeled() {
        let w = WindowedMetrics::new(2);
        w.add("wsnloc_window_epochs_solved", &tenant(10), 4);
        w.add("wsnloc_window_epochs_solved", &tenant(2), 1);
        w.set(
            "wsnloc_window_queue_depth",
            &[("tenant", "we\"ird\n".to_owned())],
            7.0,
        );
        w.observe("wsnloc_window_tick_seconds", &[], 0.25);
        let mut out = String::new();
        w.render_openmetrics_into(&mut out);
        assert!(out.contains("wsnloc_window_epochs_solved{tenant=\"10\"} 4"));
        assert!(out.contains("wsnloc_window_epochs_solved{tenant=\"2\"} 1"));
        // Label values are escaped per OpenMetrics.
        assert!(out.contains("wsnloc_window_queue_depth{tenant=\"we\\\"ird\\n\"} 7"));
        assert!(out.contains("# TYPE wsnloc_window_tick_seconds summary"));
        assert!(out.contains("# UNIT wsnloc_window_tick_seconds seconds"));
        assert!(out.contains("quantile=\"0.99\""));
        assert!(out.contains("wsnloc_window_tick_seconds_count 1"));
        // One TYPE header per family, not per label set.
        assert_eq!(out.matches("# TYPE wsnloc_window_epochs_solved").count(), 1);
    }

    #[test]
    fn gauges_hold_last_write_across_advances() {
        let w = WindowedMetrics::new(2);
        w.set("wsnloc_window_queue_depth", &tenant(1), 5.0);
        w.advance();
        w.advance();
        assert_eq!(
            w.gauge_value("wsnloc_window_queue_depth", &tenant(1)),
            Some(5.0)
        );
    }
}
