//! Hierarchical wall-clock profiling: [`Stopwatch`] and [`SpanProfiler`].
//!
//! `Stopwatch` is the single sanctioned timing primitive of the
//! workspace: `cargo xtask lint` rejects `Instant::now()` everywhere
//! outside `wsnloc-obs`, so every measured duration flows through this
//! module and is therefore visible to the profiler and the metrics
//! tier.
//!
//! `SpanProfiler` aggregates labelled spans into a tree with self/child
//! wall-clock attribution. It ingests timings two ways:
//!
//! - the generic RAII API ([`SpanProfiler::enter`]) for ad-hoc
//!   instrumentation — guards nest per thread, so a span entered while
//!   another is open becomes its child;
//! - the [`InferenceObserver`] impl, which maps the *fixed* BP phase
//!   hierarchy (`run` → `model_build`/`prior_init`/`message_passing`/
//!   `estimate_extract`, with per-iteration updates under
//!   `message_passing`) onto the same tree. The mapping is structural,
//!   not stack-based, so replaying a recorded trace produces the same
//!   tree as the live run that emitted it.
//!
//! [`SpanProfiler::flame_table`] renders the tree as an indented table
//! with calls, total seconds, self seconds (total minus attributed
//! children), and percent of root time.

use crate::observer::{InferenceObserver, IterationRecord, RunInfo, SpanKind};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

/// A started wall-clock timer. The only place the workspace is allowed
/// to read the monotonic clock (enforced by `cargo xtask lint`).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// One node of the span tree: a label under a parent, accumulated over
/// every call that hit it.
#[derive(Debug, Clone)]
struct SpanNode {
    label: &'static str,
    children: Vec<usize>,
    /// Seconds explicitly recorded against this node.
    total_secs: f64,
    calls: u64,
}

#[derive(Debug, Default)]
struct ProfState {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    /// Open-span stack per thread, for the RAII API.
    stacks: HashMap<ThreadId, Vec<usize>>,
}

impl ProfState {
    /// Index of `label` under `parent`, creating the node if new.
    fn child(&mut self, parent: Option<usize>, label: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&idx| self.nodes[idx].label == label) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            label,
            children: Vec::new(),
            total_secs: 0.0,
            calls: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Walks `path` from the roots, creating nodes as needed, and adds
    /// `secs` and one call to the final node.
    fn record_path(&mut self, path: &[&'static str], secs: f64) {
        let mut parent = None;
        for label in path {
            parent = Some(self.child(parent, label));
        }
        if let Some(idx) = parent {
            self.nodes[idx].total_secs += secs;
            self.nodes[idx].calls += 1;
        }
    }

    /// Display total of a node: explicitly recorded seconds, or the sum
    /// of its children when nothing was recorded directly (aggregate
    /// nodes like `run`).
    fn display_total(&self, idx: usize) -> f64 {
        let n = &self.nodes[idx];
        let child_sum: f64 = n.children.iter().map(|&c| self.display_total(c)).sum();
        if n.total_secs > 0.0 {
            n.total_secs
        } else {
            child_sum
        }
    }
}

/// A hierarchical span profiler: aggregates labelled wall-clock spans
/// into a tree and renders a flame-style attribution table.
///
/// Interior mutability behind a mutex lets it observe runs that report
/// from worker threads; a poisoned lock (a panicking reporter) is
/// recovered because every mutation leaves the tree consistent.
#[derive(Debug, Default)]
pub struct SpanProfiler {
    state: Mutex<ProfState>,
}

/// RAII guard for a span opened with [`SpanProfiler::enter`]; records
/// the elapsed wall time into the profiler when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    profiler: &'a SpanProfiler,
    node: usize,
    watch: Stopwatch,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let secs = self.watch.elapsed_secs();
        let mut st = self.profiler.locked();
        st.nodes[self.node].total_secs += secs;
        st.nodes[self.node].calls += 1;
        let tid = std::thread::current().id();
        if let Some(stack) = st.stacks.get_mut(&tid) {
            if stack.last() == Some(&self.node) {
                stack.pop();
            }
        }
    }
}

impl SpanProfiler {
    /// A fresh, empty profiler.
    #[must_use]
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    fn locked(&self) -> MutexGuard<'_, ProfState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span named `label` under the calling thread's currently
    /// open span (a root span if none is open). The span closes — and
    /// its wall time is recorded — when the returned guard drops.
    pub fn enter(&self, label: &'static str) -> SpanGuard<'_> {
        let tid = std::thread::current().id();
        let mut st = self.locked();
        let parent = st.stacks.get(&tid).and_then(|s| s.last()).copied();
        let node = st.child(parent, label);
        st.stacks.entry(tid).or_default().push(node);
        drop(st);
        SpanGuard {
            profiler: self,
            node,
            watch: Stopwatch::start(),
        }
    }

    /// Adds `secs` and one call to the node at `path` (root-first),
    /// creating intermediate nodes as needed. This is how structural
    /// (non-stack) sources like the observer callbacks feed the tree.
    pub fn record_path(&self, path: &[&'static str], secs: f64) {
        self.locked().record_path(path, secs);
    }

    /// Total seconds attributed to the node at `path`, or `None` if no
    /// such span was ever recorded.
    #[must_use]
    pub fn total_secs(&self, path: &[&'static str]) -> Option<f64> {
        let st = self.locked();
        let mut parent: Option<usize> = None;
        for label in path {
            let siblings = match parent {
                Some(p) => &st.nodes[p].children,
                None => &st.roots,
            };
            parent = siblings
                .iter()
                .copied()
                .find(|&idx| st.nodes[idx].label == *label);
            parent?;
        }
        parent.map(|idx| st.display_total(idx))
    }

    /// A cheap, consistent snapshot of the span tree: rows in
    /// depth-first, label-sorted order, each with accumulated calls and
    /// total/self seconds. Safe to call mid-run — open RAII spans are
    /// untouched (their time lands when the guard drops), per-thread
    /// stacks are not consulted, and the lock is held only for the copy.
    /// This is what live endpoints (`/healthz`) export without stopping
    /// the profiled run.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanSnapshotRow> {
        let st = self.locked();
        let mut rows = Vec::with_capacity(st.nodes.len());
        // (node, depth) DFS with label-sorted children.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let mut roots = st.roots.clone();
        roots.sort_by_key(|&idx| st.nodes[idx].label);
        for &r in roots.iter().rev() {
            stack.push((r, 0));
        }
        while let Some((idx, depth)) = stack.pop() {
            let node = &st.nodes[idx];
            let total = st.display_total(idx);
            let child_sum: f64 = node.children.iter().map(|&c| st.display_total(c)).sum();
            rows.push(SpanSnapshotRow {
                label: node.label,
                depth,
                calls: node.calls,
                total_secs: total,
                self_secs: (total - child_sum).max(0.0),
            });
            let mut kids = node.children.clone();
            kids.sort_by_key(|&c| st.nodes[c].label);
            for &c in kids.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        rows
    }

    /// Renders the span tree as an indented flame table. Children are
    /// sorted by label so the rendering is independent of arrival order
    /// (live runs and trace replays produce identical tables). Built on
    /// [`SpanProfiler::snapshot`], so it too is safe mid-run.
    #[must_use]
    pub fn flame_table(&self) -> String {
        use std::fmt::Write as _;
        let rows = self.snapshot();
        let grand_total: f64 = rows
            .iter()
            .filter(|r| r.depth == 0)
            .map(|r| r.total_secs)
            .sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12} {:>7}",
            "span", "calls", "total s", "self s", "%"
        );
        for row in &rows {
            let pct = if grand_total > 0.0 {
                100.0 * row.total_secs / grand_total
            } else {
                0.0
            };
            let label = format!("{:indent$}{}", "", row.label, indent = 2 * row.depth);
            let _ = writeln!(
                out,
                "{label:<40} {:>8} {:>12.6} {:>12.6} {pct:>7.1}",
                row.calls, row.total_secs, row.self_secs
            );
        }
        out
    }
}

/// One row of a [`SpanProfiler::snapshot`]: a span-tree node in
/// depth-first order with its accumulated attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshotRow {
    /// Span label.
    pub label: &'static str,
    /// Nesting depth (0 = root span).
    pub depth: usize,
    /// Times the span was recorded.
    pub calls: u64,
    /// Display total: explicit seconds, or child sum for aggregates.
    pub total_secs: f64,
    /// Total minus attributed children, floored at zero.
    pub self_secs: f64,
}

/// The fixed BP phase hierarchy: every observed run maps onto
/// `run` → phase spans, with per-iteration updates nested under
/// `message_passing`. Structural rather than stack-based, so live runs
/// and trace replays build identical trees regardless of callback
/// ordering.
impl InferenceObserver for SpanProfiler {
    fn on_run_start(&self, _info: &RunInfo) {
        // Count the run; its display total derives from the children.
        self.record_path(&["run"], 0.0);
    }

    fn on_iteration(&self, record: &IterationRecord) {
        self.record_path(&["run", "message_passing", "iteration"], record.secs);
    }

    fn on_span(&self, span: SpanKind, secs: f64) {
        self.record_path(&["run", span.label()], secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RunSummary;
    use wsnloc_net::accounting::CommStats;

    fn record(i: usize, secs: f64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            max_shift: 1.0,
            comm: CommStats {
                messages: 2,
                bytes: 48,
            },
            damping: 0.0,
            schedule: "synchronous",
            secs,
            residuals: Vec::new(),
        }
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let w = Stopwatch::start();
        assert!(w.elapsed_secs() >= 0.0);
    }

    #[test]
    fn raii_spans_nest_per_thread() {
        let prof = SpanProfiler::new();
        {
            let _outer = prof.enter("outer");
            {
                let _inner = prof.enter("inner");
            }
            {
                let _inner = prof.enter("inner");
            }
        }
        let table = prof.flame_table();
        assert!(table.contains("outer"));
        assert!(table.contains("  inner"));
        assert!(prof.total_secs(&["outer", "inner"]).is_some());
        assert!(prof.total_secs(&["inner"]).is_none(), "inner is not a root");
    }

    #[test]
    fn observer_callbacks_build_the_fixed_hierarchy() {
        let prof = SpanProfiler::new();
        let info = RunInfo {
            backend: "particle",
            nodes: 4,
            free: 2,
            edges: 3,
            max_iterations: 2,
            tolerance: 0.0,
            damping: 0.0,
            schedule: "synchronous",
            message_bytes: 24,
            seed: 1,
        };
        prof.on_run_start(&info);
        prof.on_span(SpanKind::PriorInit, 0.010);
        prof.on_iteration(&record(0, 0.005));
        prof.on_iteration(&record(1, 0.007));
        prof.on_span(SpanKind::MessagePassing, 0.020);
        prof.on_run_end(&RunSummary {
            iterations: 2,
            converged: true,
            comm: CommStats {
                messages: 4,
                bytes: 96,
            },
        });

        let iter_total = prof
            .total_secs(&["run", "message_passing", "iteration"])
            .expect("iterations recorded");
        assert!((iter_total - 0.012).abs() < 1e-12);
        let mp = prof
            .total_secs(&["run", "message_passing"])
            .expect("message passing recorded");
        assert!((mp - 0.020).abs() < 1e-12);
        // Run total derives from its children (no direct seconds).
        let run = prof.total_secs(&["run"]).expect("run recorded");
        assert!((run - 0.030).abs() < 1e-12);
        // Self time of message_passing excludes the iteration children.
        let table = prof.flame_table();
        let mp_row = table
            .lines()
            .find(|l| l.trim_start().starts_with("message_passing"))
            .expect("message_passing row");
        assert!(mp_row.contains("0.008000"), "self time row: {mp_row}");
    }

    #[test]
    fn ingest_order_does_not_change_the_table() {
        // Live runs report prior_init before the iterations; trace
        // replays deliver all iterations before any span. Same table.
        let live = SpanProfiler::new();
        live.on_span(SpanKind::PriorInit, 0.004);
        live.on_iteration(&record(0, 0.001));
        live.on_span(SpanKind::MessagePassing, 0.002);

        let replayed = SpanProfiler::new();
        replayed.on_iteration(&record(0, 0.001));
        replayed.on_span(SpanKind::PriorInit, 0.004);
        replayed.on_span(SpanKind::MessagePassing, 0.002);

        assert_eq!(live.flame_table(), replayed.flame_table());
    }

    #[test]
    fn profiler_does_not_request_residuals() {
        assert!(!SpanProfiler::new().wants_residuals());
    }

    #[test]
    fn snapshot_works_with_spans_still_open() {
        let prof = SpanProfiler::new();
        prof.record_path(&["run", "message_passing"], 0.5);
        let _open = prof.enter("run"); // still open while we snapshot
        let rows = prof.snapshot();
        let run = rows
            .iter()
            .find(|r| r.label == "run" && r.depth == 0)
            .expect("run row present");
        // The open span has contributed no time yet; the recorded child
        // drives the display total.
        assert!((run.total_secs - 0.5).abs() < 1e-12);
        let mp = rows
            .iter()
            .find(|r| r.label == "message_passing")
            .expect("child row present");
        assert_eq!(mp.depth, 1);
        assert_eq!(mp.calls, 1);
        // Snapshot did not close the open span: dropping the guard still
        // records its call afterwards.
        drop(_open);
        let after = prof.snapshot();
        let run_after = after.iter().find(|r| r.label == "run").expect("run row");
        assert_eq!(run_after.calls, 1, "the guard drop recorded one call");
    }

    #[test]
    fn flame_table_matches_snapshot_rows() {
        let prof = SpanProfiler::new();
        prof.record_path(&["run"], 0.0);
        prof.record_path(&["run", "model_build"], 0.25);
        let table = prof.flame_table();
        for row in prof.snapshot() {
            assert!(table.contains(row.label), "row {} in table", row.label);
        }
    }
}
