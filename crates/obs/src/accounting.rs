//! Observability cost counters.
//!
//! Process-wide atomic counters that measure what the observer layer
//! itself costs. The zero-cost-when-disabled contract — a run with
//! [`crate::NullObserver`] computes no residuals and stores no trace
//! records — is asserted in tests by reading these counters around a run,
//! rather than by trusting the code to stay honest.

use std::sync::atomic::{AtomicU64, Ordering};

/// Residual buffers allocated by BP engines (one per observed iteration
/// when the observer asked for residuals).
static RESIDUAL_BUFFERS: AtomicU64 = AtomicU64::new(0);

/// Iteration records stored by recording observers.
static ITERATION_RECORDS: AtomicU64 = AtomicU64::new(0);

/// Called by BP engines when they allocate per-node residual storage for
/// an observer. Engines must call this only on the
/// [`crate::InferenceObserver::wants_residuals`] path.
pub fn note_residual_buffer() {
    RESIDUAL_BUFFERS.fetch_add(1, Ordering::Relaxed);
}

/// Called by recording observers when they store an iteration record.
pub fn note_iteration_record() {
    ITERATION_RECORDS.fetch_add(1, Ordering::Relaxed);
}

/// Residual buffers allocated so far, process-wide.
pub fn residual_buffers() -> u64 {
    RESIDUAL_BUFFERS.load(Ordering::Relaxed)
}

/// Iteration records stored so far, process-wide.
pub fn iteration_records() -> u64 {
    ITERATION_RECORDS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r0 = residual_buffers();
        let i0 = iteration_records();
        note_residual_buffer();
        note_iteration_record();
        note_iteration_record();
        assert!(residual_buffers() > r0);
        assert!(iteration_records() >= i0 + 2);
    }
}
