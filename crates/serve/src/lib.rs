//! # wsnloc-serve
//!
//! A streaming, multi-tenant localization service over the epoch-session
//! API. A long-running [`StreamingEngine`] multiplexes many concurrent
//! tenant scenarios — each an independent
//! [`LocalizationSession`] with its own localizer configuration, motion
//! model, and belief state — over one shared worker pool:
//!
//! - tenants [`open_session`](StreamingEngine::open_session) and
//!   [`submit`](StreamingEngine::submit) [`MeasurementEpoch`]s (a network
//!   snapshot plus that epoch's seed);
//! - each [`tick`](StreamingEngine::tick) drains at most one epoch per
//!   tenant, solving the admitted tenants as one parallel batch and
//!   returning a [`PositionUpdate`] per processed epoch;
//! - when more tenants have work than
//!   [`EngineConfig::capacity_per_tick`] admits, the overflow is *shed*:
//!   instead of running BP, the tenant's session degrades per the
//!   configured [`DropPolicy`] — `DecayToPrior` coasts on the motion
//!   model (uncertainty grows toward the prior), `HoldLast` freezes the
//!   carried beliefs — and the update is flagged
//!   [`degraded`](PositionUpdate::degraded);
//! - per-tenant [`MetricsSnapshot`]s and an engine-level
//!   [`MetricsRegistry`] expose epoch/shed totals for scraping.
//!
//! **Determinism.** Tenant state is fully isolated (sessions never share
//! RNG streams, beliefs, or seeds) and admission is a pure function of
//! the tick index and the ready set (a round-robin window over ascending
//! ids), so every tenant's trajectory is bit-identical to running that
//! tenant alone — independent of batching order, pool size, or how many
//! other tenants the engine hosts. The cross-tenant soak test pins this
//! with `f64::to_bits` fingerprints.

#![warn(missing_docs)]

use rayon::{IntoParallelIterator, ParallelIterator};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use wsnloc::session::LocalizationSession;
use wsnloc::{BnlLocalizer, LocalizationResult, MotionModel};
use wsnloc_net::{DropPolicy, Network};
use wsnloc_obs::{
    Counter, InferenceObserver, MetricsObserver, MetricsRegistry, MetricsSnapshot, ObsEvent,
};

/// Opaque handle identifying one tenant's session within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The numeric id (stable for the engine's lifetime; also the
    /// `tenant` field of trace events).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Per-tenant configuration handed to
/// [`StreamingEngine::open_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    localizer: BnlLocalizer,
    motion: Option<MotionModel>,
}

impl SessionConfig {
    /// A session around a configured localizer, with no between-epoch
    /// motion model (static scenario observed repeatedly).
    #[must_use]
    pub fn new(localizer: BnlLocalizer) -> Self {
        SessionConfig {
            localizer,
            motion: None,
        }
    }

    /// Sets the between-epoch motion model (the predict step applied to
    /// carried beliefs, and the decay law while coasting).
    #[must_use]
    pub fn with_motion(mut self, motion: MotionModel) -> Self {
        self.motion = Some(motion);
        self
    }
}

/// One epoch of measurements a tenant submits: the network snapshot to
/// localize and the seed driving that epoch's stochastic parts.
#[derive(Debug, Clone)]
pub struct MeasurementEpoch {
    /// The observed network (fresh measurements, current topology).
    pub network: Network,
    /// Seed for this epoch's inference (per tenant, per epoch).
    pub seed: u64,
}

impl MeasurementEpoch {
    /// Bundles a snapshot with its epoch seed.
    #[must_use]
    pub fn new(network: Network, seed: u64) -> Self {
        MeasurementEpoch { network, seed }
    }
}

/// The engine's answer for one processed epoch of one tenant.
#[derive(Debug, Clone)]
pub struct PositionUpdate {
    /// Which tenant this update belongs to.
    pub tenant: SessionId,
    /// 0-based epoch index within the tenant's stream.
    pub epoch: u64,
    /// `true` when the tenant was shed this tick: no BP ran and the
    /// estimates come from the degraded (coasted or held) beliefs.
    pub degraded: bool,
    /// The epoch's localization result.
    pub result: LocalizationResult,
}

/// Engine-wide scheduling configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Tenants admitted to the BP solve batch per tick; the rest of the
    /// ready tenants are shed. `0` means unlimited (never shed).
    pub capacity_per_tick: usize,
    /// What a shed tenant's session does instead of running BP:
    /// [`DropPolicy::DecayToPrior`] coasts on the motion model (the
    /// session-level decay law; the policy's numeric decay rate is
    /// governed by the motion model's process noise),
    /// [`DropPolicy::HoldLast`] freezes the carried beliefs.
    pub shed_policy: DropPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity_per_tick: 0,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        }
    }
}

/// One tenant's full state: session, epoch queue, private metrics fold.
#[derive(Debug)]
struct Tenant {
    session: LocalizationSession,
    queue: VecDeque<MeasurementEpoch>,
    /// Private observer (own registry) so per-tenant snapshots never mix
    /// with other tenants' totals.
    metrics: MetricsObserver,
}

/// A long-running, multi-tenant localization engine.
///
/// ```
/// use wsnloc::prelude::*;
/// use wsnloc_serve::{EngineConfig, MeasurementEpoch, SessionConfig, StreamingEngine};
///
/// let scenario = Scenario::standard_with_preknowledge(100.0);
/// let (network, _truth) = scenario.build_trial(0);
/// let engine_cfg = EngineConfig {
///     capacity_per_tick: 1,
///     ..EngineConfig::default()
/// };
/// let mut engine = StreamingEngine::new(engine_cfg);
///
/// let localizer = BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
///     .max_iterations(2)
///     .try_build()
///     .expect("valid configuration");
/// let cfg = SessionConfig::new(localizer).with_motion(MotionModel::random_walk(3.0));
/// let a = engine.open_session(cfg.clone());
/// let b = engine.open_session(cfg);
/// engine.submit(a, MeasurementEpoch::new(network.clone(), 1));
/// engine.submit(b, MeasurementEpoch::new(network, 1));
///
/// // Capacity 1: one tenant solves, the other sheds (degraded update).
/// let updates = engine.tick();
/// assert_eq!(updates.len(), 2);
/// assert_eq!(updates.iter().filter(|u| u.degraded).count(), 1);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    config: EngineConfig,
    tenants: BTreeMap<u64, Tenant>,
    next_id: u64,
    /// Lifetime tick count — drives the round-robin admission rotation.
    ticks: u64,
    registry: Arc<MetricsRegistry>,
    ticks_total: Counter,
    epochs_solved: Counter,
    epochs_shed: Counter,
}

impl StreamingEngine {
    /// An engine with its own private metrics registry.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        StreamingEngine::with_registry(config, Arc::new(MetricsRegistry::new()))
    }

    /// An engine exporting its scheduler counters into a shared
    /// `registry` (per-tenant folds stay private regardless).
    #[must_use]
    pub fn with_registry(config: EngineConfig, registry: Arc<MetricsRegistry>) -> Self {
        StreamingEngine {
            ticks_total: registry.counter("wsnloc_serve_ticks", "scheduler ticks executed"),
            epochs_solved: registry
                .counter("wsnloc_serve_epochs_solved", "tenant epochs that ran BP"),
            epochs_shed: registry.counter(
                "wsnloc_serve_epochs_shed",
                "tenant epochs shed under overload",
            ),
            config,
            tenants: BTreeMap::new(),
            next_id: 0,
            ticks: 0,
            registry,
        }
    }

    /// The registry the engine's scheduler counters export into.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Opens a tenant session and returns its handle.
    pub fn open_session(&mut self, cfg: SessionConfig) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        let mut session = LocalizationSession::new(cfg.localizer);
        if let Some(motion) = cfg.motion {
            session = session.with_motion(motion);
        }
        self.tenants.insert(
            id,
            Tenant {
                session,
                queue: VecDeque::new(),
                metrics: MetricsObserver::new(),
            },
        );
        SessionId(id)
    }

    /// Closes a session, dropping its state and any queued epochs.
    /// Returns `false` if the id was unknown (already closed).
    pub fn close_session(&mut self, id: SessionId) -> bool {
        self.tenants.remove(&id.0).is_some()
    }

    /// Enqueues one measurement epoch for a tenant. Returns `false`
    /// (and drops the epoch) if the session does not exist.
    pub fn submit(&mut self, id: SessionId, epoch: MeasurementEpoch) -> bool {
        match self.tenants.get_mut(&id.0) {
            Some(t) => {
                t.queue.push_back(epoch);
                true
            }
            None => false,
        }
    }

    /// Open sessions.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Queued epochs for one tenant.
    #[must_use]
    pub fn pending(&self, id: SessionId) -> Option<usize> {
        self.tenants.get(&id.0).map(|t| t.queue.len())
    }

    /// Queued epochs across all tenants.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Whether a tenant holds carried beliefs (has completed at least
    /// one epoch since opening or being reset by a scenario change).
    #[must_use]
    pub fn is_warm(&self, id: SessionId) -> bool {
        self.tenants.get(&id.0).is_some_and(|t| t.session.is_warm())
    }

    /// Freezes a tenant's private metrics fold into a snapshot.
    #[must_use]
    pub fn metrics(&self, id: SessionId) -> Option<MetricsSnapshot> {
        self.tenants.get(&id.0).map(|t| t.metrics.snapshot())
    }

    /// Runs one scheduler tick: drains at most one queued epoch per
    /// tenant, admits up to [`EngineConfig::capacity_per_tick`] ready
    /// tenants to a parallel BP batch, sheds the rest per the drop
    /// policy, and returns every produced update sorted by tenant id.
    /// Tenants with empty queues are untouched.
    ///
    /// Admission is a deterministic round-robin: the window over the
    /// ready tenants (ascending id) rotates by one each tick, so under
    /// sustained overload every tenant keeps solving some epochs instead
    /// of the highest ids being starved forever.
    pub fn tick(&mut self) -> Vec<PositionUpdate> {
        let tick_idx = self.ticks;
        self.ticks += 1;
        self.ticks_total.inc();
        let mut ready: Vec<u64> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .map(|(&id, _)| id)
            .collect();
        if !ready.is_empty() {
            let offset = (tick_idx % ready.len() as u64) as usize;
            ready.rotate_left(offset);
        }
        let admit = if self.config.capacity_per_tick == 0 {
            ready.len()
        } else {
            self.config.capacity_per_tick.min(ready.len())
        };
        let (solve_ids, shed_ids) = ready.split_at(admit);

        let mut updates = Vec::with_capacity(ready.len());

        // Shed the overflow: degraded epochs, no BP, sequential (cheap).
        for &id in shed_ids {
            let Some(t) = self.tenants.get_mut(&id) else {
                continue;
            };
            let Some(epoch) = t.queue.pop_front() else {
                continue;
            };
            let epoch_idx = t.session.epoch();
            let result = match self.config.shed_policy {
                DropPolicy::HoldLast => t.session.hold(&epoch.network),
                DropPolicy::DecayToPrior { .. } => t.session.coast(&epoch.network, epoch.seed),
            };
            t.metrics.on_event(&ObsEvent::TenantShed {
                tenant: id,
                epoch: epoch_idx,
            });
            self.epochs_shed.inc();
            updates.push(PositionUpdate {
                tenant: SessionId(id),
                epoch: epoch_idx,
                degraded: true,
                result,
            });
        }

        // Solve the admitted batch on the worker pool. Tenants move into
        // the jobs (session + private observer travel together) and move
        // back afterwards; isolation makes the parallel order irrelevant.
        let mut jobs: Vec<(u64, Tenant, MeasurementEpoch)> = Vec::with_capacity(solve_ids.len());
        for &id in solve_ids {
            if let Some(mut t) = self.tenants.remove(&id) {
                match t.queue.pop_front() {
                    Some(epoch) => jobs.push((id, t, epoch)),
                    None => {
                        self.tenants.insert(id, t);
                    }
                }
            }
        }
        let solved: Vec<(u64, Tenant, u64, LocalizationResult)> = jobs
            .into_par_iter()
            .map(|(id, mut t, epoch)| {
                let epoch_idx = t.session.epoch();
                let result = t
                    .session
                    .advance_observed(&epoch.network, epoch.seed, &t.metrics);
                t.metrics.on_event(&ObsEvent::EpochAdvanced {
                    tenant: id,
                    epoch: epoch_idx,
                });
                (id, t, epoch_idx, result)
            })
            .collect();
        for (id, t, epoch_idx, result) in solved {
            self.epochs_solved.inc();
            self.tenants.insert(id, t);
            updates.push(PositionUpdate {
                tenant: SessionId(id),
                epoch: epoch_idx,
                degraded: false,
                result,
            });
        }
        updates.sort_by_key(|u| u.tenant.0);
        updates
    }

    /// Ticks until every queue is drained, concatenating the updates.
    pub fn drain(&mut self) -> Vec<PositionUpdate> {
        let mut all = Vec::new();
        while self.pending_total() > 0 {
            all.extend(self.tick());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc::prelude::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn net(seed: u64) -> Network {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 180.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        }
        .build(seed)
        .0
    }

    fn localizer() -> BnlLocalizer {
        BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(2)
            .tolerance(0.0)
            .try_build()
            .expect("valid config")
    }

    fn cfg() -> SessionConfig {
        SessionConfig::new(localizer()).with_motion(MotionModel::random_walk(3.0))
    }

    #[test]
    fn single_tenant_matches_direct_session() {
        let network = net(1);
        let mut engine = StreamingEngine::new(EngineConfig::default());
        let id = engine.open_session(cfg());
        for s in 0..3u64 {
            engine.submit(id, MeasurementEpoch::new(network.clone(), s));
        }
        let updates = engine.drain();

        let mut session =
            LocalizationSession::new(localizer()).with_motion(MotionModel::random_walk(3.0));
        for (s, u) in updates.iter().enumerate() {
            let direct = session.advance(&network, s as u64);
            assert_eq!(u.epoch, s as u64);
            assert!(!u.degraded);
            assert_eq!(u.result.estimates, direct.estimates);
            assert_eq!(u.result.uncertainty, direct.uncertainty);
        }
    }

    #[test]
    fn capacity_sheds_overflow_and_recovers() {
        let network = net(2);
        let mut engine = StreamingEngine::new(EngineConfig {
            capacity_per_tick: 2,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        });
        let ids: Vec<SessionId> = (0..3).map(|_| engine.open_session(cfg())).collect();
        // Warm every tenant with an uncontended tick each (ticks 0..3).
        for &id in &ids {
            engine.submit(id, MeasurementEpoch::new(network.clone(), 0));
            let warm = engine.tick();
            assert_eq!(warm.len(), 1);
            assert!(!warm[0].degraded);
        }
        // Contend on tick 3: round-robin offset 3 % 3 == 0, so the window
        // admits tenants 0 and 1 and sheds tenant 2.
        for &id in &ids {
            engine.submit(id, MeasurementEpoch::new(network.clone(), 1));
        }
        let second = engine.tick();
        assert_eq!(second.len(), 3);
        assert!(!second[0].degraded && !second[1].degraded && second[2].degraded);
        // The shed (warm) tenant still reports estimates for every node.
        let shed = &second[2];
        assert!(shed.result.estimates.iter().all(Option::is_some));
        assert_eq!(shed.result.iterations, 0);
        // And a later uncontended tick lets it solve again.
        engine.submit(ids[2], MeasurementEpoch::new(network.clone(), 2));
        let third = engine.tick();
        assert_eq!(third.len(), 1);
        assert!(!third[0].degraded);
    }

    #[test]
    fn hold_last_freezes_uncertainty_decay_inflates_it() {
        let network = net(3);
        let run = |policy: DropPolicy| {
            let mut engine = StreamingEngine::new(EngineConfig {
                capacity_per_tick: 1,
                shed_policy: policy,
            });
            let keep = engine.open_session(cfg());
            let shed = engine.open_session(cfg());
            // Warm both with an uncontended tick each.
            engine.submit(keep, MeasurementEpoch::new(network.clone(), 0));
            engine.tick();
            engine.submit(shed, MeasurementEpoch::new(network.clone(), 0));
            let warm = engine.tick();
            // Now contend on tick 2: round-robin offset 2 % 2 == 0 admits
            // the first tenant and sheds the second.
            engine.submit(keep, MeasurementEpoch::new(network.clone(), 1));
            engine.submit(shed, MeasurementEpoch::new(network.clone(), 1));
            let contended = engine.tick();
            (warm[0].result.clone(), contended[1].result.clone())
        };
        let (held_before, held) = run(DropPolicy::HoldLast);
        let (decay_before, decayed) = run(DropPolicy::DecayToPrior { decay: 0.5 });
        for id in network.unknowns() {
            // HoldLast re-reports the frozen beliefs verbatim…
            assert_eq!(held.estimates[id], held_before.estimates[id]);
            assert_eq!(held.uncertainty[id], held_before.uncertainty[id]);
            // …while DecayToPrior's motion predict grows the spread.
            let (before, after) = (decay_before.uncertainty[id], decayed.uncertainty[id]);
            if let (Some(b), Some(a)) = (before, after) {
                assert!(a > b, "coasting must inflate uncertainty: {a} <= {b}");
            }
        }
    }

    #[test]
    fn per_tenant_metrics_stay_isolated() {
        let network = net(4);
        let mut engine = StreamingEngine::new(EngineConfig {
            capacity_per_tick: 1,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        });
        let a = engine.open_session(cfg());
        let b = engine.open_session(cfg());
        for s in 0..2u64 {
            engine.submit(a, MeasurementEpoch::new(network.clone(), s));
            engine.submit(b, MeasurementEpoch::new(network.clone(), s));
            engine.tick();
        }
        let ma = engine.metrics(a).expect("tenant a metrics");
        let mb = engine.metrics(b).expect("tenant b metrics");
        // Round-robin under capacity 1: each tenant solved one epoch and
        // was shed once, and each fold only saw its own tenant's events.
        assert_eq!(ma.runs, 1);
        assert_eq!(ma.events.epoch_advances, 1);
        assert_eq!(ma.events.tenants_shed, 1);
        assert_eq!(mb.runs, 1);
        assert_eq!(mb.events.epoch_advances, 1);
        assert_eq!(mb.events.tenants_shed, 1);
        // Engine-level scheduler counters see both tenants.
        let scrape = engine.registry().render_openmetrics();
        assert!(scrape.contains("wsnloc_serve_epochs_solved_total 2"));
        assert!(scrape.contains("wsnloc_serve_epochs_shed_total 2"));
    }

    #[test]
    fn close_and_unknown_sessions() {
        let network = net(5);
        let mut engine = StreamingEngine::new(EngineConfig::default());
        let id = engine.open_session(cfg());
        assert_eq!(engine.tenant_count(), 1);
        assert!(engine.submit(id, MeasurementEpoch::new(network.clone(), 0)));
        assert_eq!(engine.pending(id), Some(1));
        assert!(engine.close_session(id));
        assert!(!engine.close_session(id));
        assert!(!engine.submit(id, MeasurementEpoch::new(network, 0)));
        assert_eq!(engine.pending(id), None);
        assert!(engine.tick().is_empty());
    }
}
