//! # wsnloc-serve
//!
//! A streaming, multi-tenant localization service over the epoch-session
//! API. A long-running [`StreamingEngine`] multiplexes many concurrent
//! tenant scenarios — each an independent
//! [`LocalizationSession`] with its own localizer configuration, motion
//! model, and belief state — over one shared worker pool:
//!
//! - tenants [`open_session`](StreamingEngine::open_session) and
//!   [`submit`](StreamingEngine::submit) [`MeasurementEpoch`]s (a network
//!   snapshot plus that epoch's seed);
//! - each [`tick`](StreamingEngine::tick) drains at most one epoch per
//!   tenant, solving the admitted tenants as one parallel batch and
//!   returning a [`PositionUpdate`] per processed epoch;
//! - when more tenants have work than
//!   [`EngineConfig::capacity_per_tick`] admits, the overflow is *shed*:
//!   instead of running BP, the tenant's session degrades per the
//!   configured [`DropPolicy`] — `DecayToPrior` coasts on the motion
//!   model (uncertainty grows toward the prior), `HoldLast` freezes the
//!   carried beliefs — and the update is flagged
//!   [`degraded`](PositionUpdate::degraded);
//! - per-tenant [`MetricsSnapshot`]s and an engine-level
//!   [`MetricsRegistry`] expose epoch/shed totals for scraping.
//!
//! **Live telemetry.** Every engine owns a
//! [`WindowedMetrics`] sliding window (per-tenant epochs solved/shed,
//! per-tenant queue-depth gauges, per-shard boundary-message volume
//! when a tenant's localizer is sharded, and a tick-latency quantile
//! pool) advanced once per [`tick`](StreamingEngine::tick), plus a
//! [`TelemetryHub`] publishing liveness and a per-tenant JSON rollup.
//! [`StreamingEngine::builder`] can bind an embedded
//! [`TelemetryServer`] (`/metrics`, `/healthz`, `/tenants`), join an
//! external hub shared across engines, and attach an extra
//! [`InferenceObserver`] (e.g. a
//! [`SampledObserver`](wsnloc_obs::SampledObserver) in front of a
//! trace sink) that receives [`ObsEvent::Context`] correlation stamps
//! (tenant/epoch) ahead of each run's callbacks. Telemetry never
//! touches the solve path: updates are bit-identical with the server
//! on, off, or absent (pinned by tests).
//!
//! **Determinism.** Tenant state is fully isolated (sessions never share
//! RNG streams, beliefs, or seeds) and admission is a pure function of
//! the tick index and the ready set (a round-robin window over ascending
//! ids), so every tenant's trajectory is bit-identical to running that
//! tenant alone — independent of batching order, pool size, or how many
//! other tenants the engine hosts. The cross-tenant soak test pins this
//! with `f64::to_bits` fingerprints.

#![warn(missing_docs)]

use rayon::{IntoParallelIterator, ParallelIterator};
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use wsnloc::session::LocalizationSession;
use wsnloc::{BnlLocalizer, LocalizationResult, MotionModel};
use wsnloc_net::{DropPolicy, Network};
use wsnloc_obs::{
    Counter, FanoutObserver, Histogram, InferenceObserver, MetricsObserver, MetricsRegistry,
    MetricsSnapshot, ObsEvent, Stopwatch, TelemetryHub, TelemetryServer, WindowedMetrics,
};

/// Opaque handle identifying one tenant's session within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The numeric id (stable for the engine's lifetime; also the
    /// `tenant` field of trace events).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Per-tenant configuration handed to
/// [`StreamingEngine::open_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    localizer: BnlLocalizer,
    motion: Option<MotionModel>,
}

impl SessionConfig {
    /// A session around a configured localizer, with no between-epoch
    /// motion model (static scenario observed repeatedly).
    #[must_use]
    pub fn new(localizer: BnlLocalizer) -> Self {
        SessionConfig {
            localizer,
            motion: None,
        }
    }

    /// Sets the between-epoch motion model (the predict step applied to
    /// carried beliefs, and the decay law while coasting).
    #[must_use]
    pub fn with_motion(mut self, motion: MotionModel) -> Self {
        self.motion = Some(motion);
        self
    }
}

/// One epoch of measurements a tenant submits: the network snapshot to
/// localize and the seed driving that epoch's stochastic parts.
#[derive(Debug, Clone)]
pub struct MeasurementEpoch {
    /// The observed network (fresh measurements, current topology).
    pub network: Network,
    /// Seed for this epoch's inference (per tenant, per epoch).
    pub seed: u64,
}

impl MeasurementEpoch {
    /// Bundles a snapshot with its epoch seed.
    #[must_use]
    pub fn new(network: Network, seed: u64) -> Self {
        MeasurementEpoch { network, seed }
    }
}

/// The engine's answer for one processed epoch of one tenant.
#[derive(Debug, Clone)]
pub struct PositionUpdate {
    /// Which tenant this update belongs to.
    pub tenant: SessionId,
    /// 0-based epoch index within the tenant's stream.
    pub epoch: u64,
    /// `true` when the tenant was shed this tick: no BP ran and the
    /// estimates come from the degraded (coasted or held) beliefs.
    pub degraded: bool,
    /// The epoch's localization result.
    pub result: LocalizationResult,
}

/// Engine-wide scheduling configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Tenants admitted to the BP solve batch per tick; the rest of the
    /// ready tenants are shed. `0` means unlimited (never shed).
    pub capacity_per_tick: usize,
    /// What a shed tenant's session does instead of running BP:
    /// [`DropPolicy::DecayToPrior`] coasts on the motion model (the
    /// session-level decay law; the policy's numeric decay rate is
    /// governed by the motion model's process noise),
    /// [`DropPolicy::HoldLast`] freezes the carried beliefs.
    pub shed_policy: DropPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity_per_tick: 0,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        }
    }
}

/// One tenant's full state: session, epoch queue, private metrics fold.
#[derive(Debug)]
struct Tenant {
    session: LocalizationSession,
    queue: VecDeque<MeasurementEpoch>,
    /// Private observer (own registry) so per-tenant snapshots never mix
    /// with other tenants' totals.
    metrics: MetricsObserver,
    /// Lifetime epochs this tenant solved (for the `/tenants` rollup).
    solved: u64,
    /// Lifetime epochs this tenant was shed (for the `/tenants` rollup).
    shed: u64,
}

/// A long-running, multi-tenant localization engine.
///
/// ```
/// use wsnloc::prelude::*;
/// use wsnloc_serve::{EngineConfig, MeasurementEpoch, SessionConfig, StreamingEngine};
///
/// let scenario = Scenario::standard_with_preknowledge(100.0);
/// let (network, _truth) = scenario.build_trial(0);
/// let engine_cfg = EngineConfig {
///     capacity_per_tick: 1,
///     ..EngineConfig::default()
/// };
/// let mut engine = StreamingEngine::new(engine_cfg);
///
/// let localizer = BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
///     .max_iterations(2)
///     .try_build()
///     .expect("valid configuration");
/// let cfg = SessionConfig::new(localizer).with_motion(MotionModel::random_walk(3.0));
/// let a = engine.open_session(cfg.clone());
/// let b = engine.open_session(cfg);
/// engine.submit(a, MeasurementEpoch::new(network.clone(), 1));
/// engine.submit(b, MeasurementEpoch::new(network, 1));
///
/// // Capacity 1: one tenant solves, the other sheds (degraded update).
/// let updates = engine.tick();
/// assert_eq!(updates.len(), 2);
/// assert_eq!(updates.iter().filter(|u| u.degraded).count(), 1);
/// ```
pub struct StreamingEngine {
    config: EngineConfig,
    tenants: BTreeMap<u64, Tenant>,
    next_id: u64,
    /// Lifetime tick count — drives the round-robin admission rotation.
    ticks: u64,
    registry: Arc<MetricsRegistry>,
    ticks_total: Counter,
    epochs_solved: Counter,
    epochs_shed: Counter,
    tick_seconds: Histogram,
    /// Sliding-window tier; advanced once per tick.
    window: Arc<WindowedMetrics>,
    /// Liveness + rollup publication point (always present; a scrape
    /// server is only attached when the builder asked for one).
    hub: TelemetryHub,
    /// Embedded scrape server, when the builder bound one.
    server: Option<TelemetryServer>,
    /// Extra observer fanned into every solve (correlation stamps,
    /// sampled tracing). `None` keeps the pre-telemetry solve wiring.
    observer: Option<Arc<dyn InferenceObserver + Send + Sync>>,
}

impl std::fmt::Debug for StreamingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingEngine")
            .field("config", &self.config)
            .field("tenants", &self.tenants.len())
            .field("ticks", &self.ticks)
            .field("telemetry_addr", &self.telemetry_addr())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("config", &self.config)
            .field("window_slots", &self.window_slots)
            .field("telemetry_addr", &self.telemetry_addr)
            .finish_non_exhaustive()
    }
}

/// Configures a [`StreamingEngine`] beyond the scheduling knobs of
/// [`EngineConfig`]: shared registries, window sizing, an embedded
/// [`TelemetryServer`], an external [`TelemetryHub`], and an extra
/// run observer. Obtained from [`StreamingEngine::builder`].
pub struct EngineBuilder {
    config: EngineConfig,
    registry: Option<Arc<MetricsRegistry>>,
    window_slots: usize,
    telemetry_addr: Option<String>,
    hub: Option<TelemetryHub>,
    observer: Option<Arc<dyn InferenceObserver + Send + Sync>>,
}

impl EngineBuilder {
    /// Exports the scheduler counters into a shared `registry` instead
    /// of a private one. Ignored when [`EngineBuilder::hub`] is set
    /// (the hub's registry wins).
    #[must_use]
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Ring slots of the sliding window (default 64 ticks). Ignored
    /// when [`EngineBuilder::hub`] is set (the hub's window wins).
    #[must_use]
    pub fn window_slots(mut self, slots: usize) -> Self {
        self.window_slots = slots;
        self
    }

    /// Binds an embedded [`TelemetryServer`] on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port — read it back with
    /// [`StreamingEngine::telemetry_addr`]). The server lives exactly
    /// as long as the engine.
    #[must_use]
    pub fn telemetry(mut self, addr: &str) -> Self {
        self.telemetry_addr = Some(addr.to_owned());
        self
    }

    /// Joins an external hub instead of creating one: the engine adopts
    /// the hub's registry and window (so several sequential engines can
    /// publish to one scrape endpoint) and does not start a server of
    /// its own — whoever owns the hub owns the server.
    #[must_use]
    pub fn hub(mut self, hub: TelemetryHub) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Fans an extra observer into every solved epoch, after the
    /// tenant's private metrics fold. It receives an
    /// [`ObsEvent::Context`] stamp (tenant + epoch) immediately before
    /// each run's callbacks and a stamp + [`ObsEvent::TenantShed`] for
    /// shed epochs. With `capacity_per_tick > 1` the admitted batch
    /// solves in parallel, so a *shared* observer sees the tenants'
    /// streams interleaved — pair it with a
    /// [`SampledObserver`](wsnloc_obs::SampledObserver) or key off the
    /// stamps to de-interleave.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn InferenceObserver + Send + Sync>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builds the engine. The only fallible step is binding the
    /// embedded telemetry listener, so without
    /// [`EngineBuilder::telemetry`] this always succeeds.
    pub fn build(mut self) -> std::io::Result<StreamingEngine> {
        let addr = self.telemetry_addr.take();
        let mut engine = self.build_unserved();
        if let Some(addr) = addr {
            engine.server = Some(TelemetryServer::start(&addr, engine.hub.clone())?);
        }
        Ok(engine)
    }

    /// Everything except the listener — the infallible part of
    /// [`EngineBuilder::build`], used directly by the plain
    /// constructors.
    fn build_unserved(self) -> StreamingEngine {
        let (registry, window, hub) = match self.hub {
            Some(hub) => (Arc::clone(hub.registry()), Arc::clone(hub.window()), hub),
            None => {
                let registry = self
                    .registry
                    .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
                let window = Arc::new(WindowedMetrics::new(self.window_slots));
                let hub = TelemetryHub::new(Arc::clone(&registry), Arc::clone(&window));
                (registry, window, hub)
            }
        };
        StreamingEngine {
            ticks_total: registry.counter("wsnloc_serve_ticks", "scheduler ticks executed"),
            epochs_solved: registry
                .counter("wsnloc_serve_epochs_solved", "tenant epochs that ran BP"),
            epochs_shed: registry.counter(
                "wsnloc_serve_epochs_shed",
                "tenant epochs shed under overload",
            ),
            tick_seconds: registry.histogram(
                "wsnloc_serve_tick_seconds",
                "wall seconds per scheduler tick",
                Histogram::log_bounds(1e-4, 10.0),
            ),
            config: self.config,
            tenants: BTreeMap::new(),
            next_id: 0,
            ticks: 0,
            registry,
            window,
            hub,
            server: None,
            observer: self.observer,
        }
    }
}

impl StreamingEngine {
    /// An engine with its own private metrics registry.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        StreamingEngine::builder(config).build_unserved()
    }

    /// An engine exporting its scheduler counters into a shared
    /// `registry` (per-tenant folds stay private regardless).
    #[must_use]
    pub fn with_registry(config: EngineConfig, registry: Arc<MetricsRegistry>) -> Self {
        StreamingEngine::builder(config)
            .registry(registry)
            .build_unserved()
    }

    /// Starts configuring an engine (see [`EngineBuilder`]).
    #[must_use]
    pub fn builder(config: EngineConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            registry: None,
            window_slots: 64,
            telemetry_addr: None,
            hub: None,
            observer: None,
        }
    }

    /// The registry the engine's scheduler counters export into.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The engine's sliding-window metrics tier.
    #[must_use]
    pub fn window(&self) -> Arc<WindowedMetrics> {
        Arc::clone(&self.window)
    }

    /// The telemetry hub the engine publishes liveness into.
    #[must_use]
    pub fn hub(&self) -> TelemetryHub {
        self.hub.clone()
    }

    /// Bound address of the embedded telemetry server, when
    /// [`EngineBuilder::telemetry`] asked for one.
    #[must_use]
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(TelemetryServer::local_addr)
    }

    /// Opens a tenant session and returns its handle.
    pub fn open_session(&mut self, cfg: SessionConfig) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        let mut session = LocalizationSession::new(cfg.localizer);
        if let Some(motion) = cfg.motion {
            session = session.with_motion(motion);
        }
        self.tenants.insert(
            id,
            Tenant {
                session,
                queue: VecDeque::new(),
                metrics: MetricsObserver::new(),
                solved: 0,
                shed: 0,
            },
        );
        SessionId(id)
    }

    /// Closes a session, dropping its state and any queued epochs.
    /// Returns `false` if the id was unknown (already closed).
    pub fn close_session(&mut self, id: SessionId) -> bool {
        self.tenants.remove(&id.0).is_some()
    }

    /// Enqueues one measurement epoch for a tenant. Returns `false`
    /// (and drops the epoch) if the session does not exist.
    pub fn submit(&mut self, id: SessionId, epoch: MeasurementEpoch) -> bool {
        match self.tenants.get_mut(&id.0) {
            Some(t) => {
                t.queue.push_back(epoch);
                true
            }
            None => false,
        }
    }

    /// Open sessions.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Queued epochs for one tenant.
    #[must_use]
    pub fn pending(&self, id: SessionId) -> Option<usize> {
        self.tenants.get(&id.0).map(|t| t.queue.len())
    }

    /// Queued epochs across all tenants.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Whether a tenant holds carried beliefs (has completed at least
    /// one epoch since opening or being reset by a scenario change).
    #[must_use]
    pub fn is_warm(&self, id: SessionId) -> bool {
        self.tenants.get(&id.0).is_some_and(|t| t.session.is_warm())
    }

    /// Freezes a tenant's private metrics fold into a snapshot.
    #[must_use]
    pub fn metrics(&self, id: SessionId) -> Option<MetricsSnapshot> {
        self.tenants.get(&id.0).map(|t| t.metrics.snapshot())
    }

    /// Runs one scheduler tick: drains at most one queued epoch per
    /// tenant, admits up to [`EngineConfig::capacity_per_tick`] ready
    /// tenants to a parallel BP batch, sheds the rest per the drop
    /// policy, and returns every produced update sorted by tenant id.
    /// Tenants with empty queues are untouched.
    ///
    /// Admission is a deterministic round-robin: the window over the
    /// ready tenants (ascending id) rotates by one each tick, so under
    /// sustained overload every tenant keeps solving some epochs instead
    /// of the highest ids being starved forever.
    pub fn tick(&mut self) -> Vec<PositionUpdate> {
        let tick_watch = Stopwatch::start();
        let tick_idx = self.ticks;
        self.ticks += 1;
        self.ticks_total.inc();
        let mut ready: Vec<u64> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .map(|(&id, _)| id)
            .collect();
        if !ready.is_empty() {
            let offset = (tick_idx % ready.len() as u64) as usize;
            ready.rotate_left(offset);
        }
        let admit = if self.config.capacity_per_tick == 0 {
            ready.len()
        } else {
            self.config.capacity_per_tick.min(ready.len())
        };
        let (solve_ids, shed_ids) = ready.split_at(admit);

        let mut updates = Vec::with_capacity(ready.len());

        // Shed the overflow: degraded epochs, no BP, sequential (cheap).
        for &id in shed_ids {
            let Some(t) = self.tenants.get_mut(&id) else {
                continue;
            };
            let Some(epoch) = t.queue.pop_front() else {
                continue;
            };
            let epoch_idx = t.session.epoch();
            let result = match self.config.shed_policy {
                DropPolicy::HoldLast => t.session.hold(&epoch.network),
                DropPolicy::DecayToPrior { .. } => t.session.coast(&epoch.network, epoch.seed),
            };
            let shed_event = ObsEvent::TenantShed {
                tenant: id,
                epoch: epoch_idx,
            };
            t.metrics.on_event(&shed_event);
            t.shed += 1;
            self.window.fold_event(&shed_event);
            if let Some(obs) = &self.observer {
                obs.on_event(&ObsEvent::Context {
                    tenant: Some(id),
                    epoch: Some(epoch_idx),
                    shard: None,
                    round: None,
                });
                obs.on_event(&shed_event);
            }
            self.epochs_shed.inc();
            updates.push(PositionUpdate {
                tenant: SessionId(id),
                epoch: epoch_idx,
                degraded: true,
                result,
            });
        }

        // Solve the admitted batch on the worker pool. Tenants move into
        // the jobs (session + private observer travel together) and move
        // back afterwards; isolation makes the parallel order irrelevant.
        let mut jobs: Vec<(u64, Tenant, MeasurementEpoch)> = Vec::with_capacity(solve_ids.len());
        for &id in solve_ids {
            if let Some(mut t) = self.tenants.remove(&id) {
                match t.queue.pop_front() {
                    Some(epoch) => jobs.push((id, t, epoch)),
                    None => {
                        self.tenants.insert(id, t);
                    }
                }
            }
        }
        let window = Arc::clone(&self.window);
        let extra = self.observer.clone();
        let solved: Vec<(u64, Tenant, u64, LocalizationResult)> = jobs
            .into_par_iter()
            .map(|(id, mut t, epoch)| {
                let epoch_idx = t.session.epoch();
                // The window and the extra observer ride every solve via
                // fan-out; the context stamp precedes the run's callbacks
                // so downstream consumers can attribute them.
                let mut targets: Vec<&dyn InferenceObserver> = vec![&t.metrics, window.as_ref()];
                if let Some(obs) = extra.as_deref() {
                    targets.push(obs);
                }
                let fanout = FanoutObserver::new(targets);
                fanout.on_event(&ObsEvent::Context {
                    tenant: Some(id),
                    epoch: Some(epoch_idx),
                    shard: None,
                    round: None,
                });
                let result = t
                    .session
                    .advance_observed(&epoch.network, epoch.seed, &fanout);
                fanout.on_event(&ObsEvent::EpochAdvanced {
                    tenant: id,
                    epoch: epoch_idx,
                });
                drop(fanout);
                t.solved += 1;
                (id, t, epoch_idx, result)
            })
            .collect();
        for (id, t, epoch_idx, result) in solved {
            self.epochs_solved.inc();
            self.tenants.insert(id, t);
            updates.push(PositionUpdate {
                tenant: SessionId(id),
                epoch: epoch_idx,
                degraded: false,
                result,
            });
        }
        updates.sort_by_key(|u| u.tenant.0);

        // Close out the tick's telemetry: latency sample, queue-depth
        // gauges, liveness, the `/tenants` rollup, then rotate the
        // window so the next tick writes a fresh slot.
        let tick_secs = tick_watch.elapsed_secs();
        self.tick_seconds.observe(tick_secs);
        self.window
            .observe("wsnloc_window_tick_seconds", &[], tick_secs);
        for (&id, t) in &self.tenants {
            self.window.set(
                "wsnloc_window_queue_depth",
                &[("tenant", id.to_string())],
                t.queue.len() as f64,
            );
        }
        self.hub.set_tenants_json(self.tenants_rollup_json());
        self.hub.note_tick();
        self.window.advance();
        updates
    }

    /// The `/tenants` JSON document: one entry per open session.
    fn tenants_rollup_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"tenants\":[");
        for (i, (&id, t)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{id},\"pending\":{},\"warm\":{},\"solved\":{},\"shed\":{},\"next_epoch\":{}}}",
                t.queue.len(),
                t.session.is_warm(),
                t.solved,
                t.shed,
                t.session.epoch()
            );
        }
        let _ = write!(out, "],\"ticks\":{}}}", self.ticks);
        out
    }

    /// Ticks until every queue is drained, concatenating the updates.
    pub fn drain(&mut self) -> Vec<PositionUpdate> {
        let mut all = Vec::new();
        while self.pending_total() > 0 {
            all.extend(self.tick());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc::prelude::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn net(seed: u64) -> Network {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 180.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        }
        .build(seed)
        .0
    }

    fn localizer() -> BnlLocalizer {
        BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(2)
            .tolerance(0.0)
            .try_build()
            .expect("valid config")
    }

    fn cfg() -> SessionConfig {
        SessionConfig::new(localizer()).with_motion(MotionModel::random_walk(3.0))
    }

    #[test]
    fn single_tenant_matches_direct_session() {
        let network = net(1);
        let mut engine = StreamingEngine::new(EngineConfig::default());
        let id = engine.open_session(cfg());
        for s in 0..3u64 {
            engine.submit(id, MeasurementEpoch::new(network.clone(), s));
        }
        let updates = engine.drain();

        let mut session =
            LocalizationSession::new(localizer()).with_motion(MotionModel::random_walk(3.0));
        for (s, u) in updates.iter().enumerate() {
            let direct = session.advance(&network, s as u64);
            assert_eq!(u.epoch, s as u64);
            assert!(!u.degraded);
            assert_eq!(u.result.estimates, direct.estimates);
            assert_eq!(u.result.uncertainty, direct.uncertainty);
        }
    }

    #[test]
    fn capacity_sheds_overflow_and_recovers() {
        let network = net(2);
        let mut engine = StreamingEngine::new(EngineConfig {
            capacity_per_tick: 2,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        });
        let ids: Vec<SessionId> = (0..3).map(|_| engine.open_session(cfg())).collect();
        // Warm every tenant with an uncontended tick each (ticks 0..3).
        for &id in &ids {
            engine.submit(id, MeasurementEpoch::new(network.clone(), 0));
            let warm = engine.tick();
            assert_eq!(warm.len(), 1);
            assert!(!warm[0].degraded);
        }
        // Contend on tick 3: round-robin offset 3 % 3 == 0, so the window
        // admits tenants 0 and 1 and sheds tenant 2.
        for &id in &ids {
            engine.submit(id, MeasurementEpoch::new(network.clone(), 1));
        }
        let second = engine.tick();
        assert_eq!(second.len(), 3);
        assert!(!second[0].degraded && !second[1].degraded && second[2].degraded);
        // The shed (warm) tenant still reports estimates for every node.
        let shed = &second[2];
        assert!(shed.result.estimates.iter().all(Option::is_some));
        assert_eq!(shed.result.iterations, 0);
        // And a later uncontended tick lets it solve again.
        engine.submit(ids[2], MeasurementEpoch::new(network.clone(), 2));
        let third = engine.tick();
        assert_eq!(third.len(), 1);
        assert!(!third[0].degraded);
    }

    #[test]
    fn hold_last_freezes_uncertainty_decay_inflates_it() {
        let network = net(3);
        let run = |policy: DropPolicy| {
            let mut engine = StreamingEngine::new(EngineConfig {
                capacity_per_tick: 1,
                shed_policy: policy,
            });
            let keep = engine.open_session(cfg());
            let shed = engine.open_session(cfg());
            // Warm both with an uncontended tick each.
            engine.submit(keep, MeasurementEpoch::new(network.clone(), 0));
            engine.tick();
            engine.submit(shed, MeasurementEpoch::new(network.clone(), 0));
            let warm = engine.tick();
            // Now contend on tick 2: round-robin offset 2 % 2 == 0 admits
            // the first tenant and sheds the second.
            engine.submit(keep, MeasurementEpoch::new(network.clone(), 1));
            engine.submit(shed, MeasurementEpoch::new(network.clone(), 1));
            let contended = engine.tick();
            (warm[0].result.clone(), contended[1].result.clone())
        };
        let (held_before, held) = run(DropPolicy::HoldLast);
        let (decay_before, decayed) = run(DropPolicy::DecayToPrior { decay: 0.5 });
        for id in network.unknowns() {
            // HoldLast re-reports the frozen beliefs verbatim…
            assert_eq!(held.estimates[id], held_before.estimates[id]);
            assert_eq!(held.uncertainty[id], held_before.uncertainty[id]);
            // …while DecayToPrior's motion predict grows the spread.
            let (before, after) = (decay_before.uncertainty[id], decayed.uncertainty[id]);
            if let (Some(b), Some(a)) = (before, after) {
                assert!(a > b, "coasting must inflate uncertainty: {a} <= {b}");
            }
        }
    }

    #[test]
    fn per_tenant_metrics_stay_isolated() {
        let network = net(4);
        let mut engine = StreamingEngine::new(EngineConfig {
            capacity_per_tick: 1,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        });
        let a = engine.open_session(cfg());
        let b = engine.open_session(cfg());
        for s in 0..2u64 {
            engine.submit(a, MeasurementEpoch::new(network.clone(), s));
            engine.submit(b, MeasurementEpoch::new(network.clone(), s));
            engine.tick();
        }
        let ma = engine.metrics(a).expect("tenant a metrics");
        let mb = engine.metrics(b).expect("tenant b metrics");
        // Round-robin under capacity 1: each tenant solved one epoch and
        // was shed once, and each fold only saw its own tenant's events.
        assert_eq!(ma.runs, 1);
        assert_eq!(ma.events.epoch_advances, 1);
        assert_eq!(ma.events.tenants_shed, 1);
        assert_eq!(mb.runs, 1);
        assert_eq!(mb.events.epoch_advances, 1);
        assert_eq!(mb.events.tenants_shed, 1);
        // Engine-level scheduler counters see both tenants.
        let scrape = engine.registry().render_openmetrics();
        assert!(scrape.contains("wsnloc_serve_epochs_solved_total 2"));
        assert!(scrape.contains("wsnloc_serve_epochs_shed_total 2"));
    }

    /// Runs a fixed 3-tenant, 3-epoch workload and fingerprints every
    /// update (estimates + uncertainty bits, degraded flags).
    fn workload_fingerprint(mut engine: StreamingEngine) -> Vec<u64> {
        let network = net(6);
        let ids: Vec<SessionId> = (0..3).map(|_| engine.open_session(cfg())).collect();
        let mut fp = Vec::new();
        for s in 0..3u64 {
            for &id in &ids {
                engine.submit(id, MeasurementEpoch::new(network.clone(), s));
            }
            for u in engine.tick() {
                fp.push(u.tenant.raw());
                fp.push(u.epoch);
                fp.push(u64::from(u.degraded));
                for e in u.result.estimates.iter().flatten() {
                    fp.push(e.x.to_bits());
                    fp.push(e.y.to_bits());
                }
                for s in u.result.uncertainty.iter().flatten() {
                    fp.push(s.to_bits());
                }
            }
        }
        fp
    }

    #[test]
    fn telemetry_on_off_is_bit_identical() {
        let overloaded = EngineConfig {
            capacity_per_tick: 2,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        };
        let plain = workload_fingerprint(StreamingEngine::new(overloaded));
        let served = workload_fingerprint(
            StreamingEngine::builder(overloaded)
                .window_slots(4)
                .telemetry("127.0.0.1:0")
                .build()
                .expect("bind ephemeral port"),
        );
        let observed = workload_fingerprint(
            StreamingEngine::builder(overloaded)
                .observer(Arc::new(wsnloc_obs::TraceObserver::new()))
                .build()
                .expect("no listener to bind"),
        );
        assert_eq!(plain, served, "live scrape server must not perturb results");
        assert_eq!(plain, observed, "extra observer must not perturb results");
    }

    #[test]
    fn scrape_serves_windowed_per_tenant_series_and_health() {
        use std::io::{Read as _, Write as _};
        let mut engine = StreamingEngine::builder(EngineConfig {
            capacity_per_tick: 1,
            shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
        })
        .window_slots(8)
        .telemetry("127.0.0.1:0")
        .build()
        .expect("bind ephemeral port");
        let network = net(7);
        let a = engine.open_session(cfg());
        let b = engine.open_session(cfg());
        engine.submit(a, MeasurementEpoch::new(network.clone(), 0));
        engine.submit(b, MeasurementEpoch::new(network.clone(), 0));
        engine.tick();

        let addr = engine.telemetry_addr().expect("server bound");
        let get = |path: &str| {
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
            stream.write_all(req.as_bytes()).expect("send");
            let mut out = String::new();
            stream.read_to_string(&mut out).expect("read");
            out
        };

        let metrics = get("/metrics");
        // Registry totals and windowed per-tenant series side by side.
        assert!(metrics.contains("wsnloc_serve_ticks_total 1"));
        assert!(metrics.contains("wsnloc_serve_tick_seconds"));
        // Capacity 1: tenant 0 solved, tenant 1 shed.
        assert!(metrics.contains("wsnloc_window_epochs_solved{tenant=\"0\"} 1"));
        assert!(metrics.contains("wsnloc_window_epochs_shed{tenant=\"1\"} 1"));
        assert!(metrics.contains("wsnloc_window_queue_depth{tenant=\"0\"} 0"));
        assert!(metrics.contains("wsnloc_window_tick_seconds_count 1"));
        assert_eq!(metrics.matches("# EOF").count(), 1);

        let health = get("/healthz");
        assert!(health.contains("\"ok\":true"));
        assert!(health.contains("\"ticks\":1"));
        assert!(health.contains("\"last_tick_age_secs\":"));

        let tenants = get("/tenants");
        assert!(tenants.contains("\"id\":0"));
        assert!(tenants.contains("\"solved\":1"));
        assert!(tenants.contains("\"shed\":1"));
    }

    #[test]
    fn window_retires_old_ticks() {
        let mut engine = StreamingEngine::builder(EngineConfig::default())
            .window_slots(2)
            .build()
            .expect("no listener to bind");
        let network = net(8);
        let id = engine.open_session(cfg());
        engine.submit(id, MeasurementEpoch::new(network.clone(), 0));
        engine.tick();
        let w = engine.window();
        let label = [("tenant", "0".to_owned())];
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &label),
            Some(1)
        );
        // Two empty ticks push the solve out of the 2-slot window; the
        // lifetime registry counter keeps it.
        engine.tick();
        engine.tick();
        assert_eq!(
            w.window_total("wsnloc_window_epochs_solved", &label),
            Some(0)
        );
        let scrape = engine.registry().render_openmetrics();
        assert!(scrape.contains("wsnloc_serve_epochs_solved_total 1"));
    }

    #[test]
    fn extra_observer_gets_context_stamps_before_runs() {
        let trace = Arc::new(wsnloc_obs::TraceObserver::new());
        let mut engine = StreamingEngine::builder(EngineConfig::default())
            .observer(Arc::clone(&trace) as Arc<dyn InferenceObserver + Send + Sync>)
            .build()
            .expect("no listener to bind");
        let network = net(9);
        let id = engine.open_session(cfg());
        engine.submit(id, MeasurementEpoch::new(network.clone(), 0));
        engine.submit(id, MeasurementEpoch::new(network, 1));
        engine.drain();
        let runs = trace.take_runs();
        assert_eq!(runs.len(), 2, "one trace per solved epoch");
        // The engine stamps tenant+epoch context; the stamp for run N+1
        // lands in run N's event tail (pre-first-run stamps are dropped
        // by TraceObserver, by design), and each run's events also carry
        // the post-run EpochAdvanced marker.
        let first_events = &runs[0].events;
        assert!(first_events.iter().any(|e| matches!(
            e,
            ObsEvent::EpochAdvanced {
                tenant: 0,
                epoch: 0
            }
        )));
        assert!(first_events.iter().any(|e| matches!(
            e,
            ObsEvent::Context {
                tenant: Some(0),
                epoch: Some(1),
                ..
            }
        )));
    }

    #[test]
    fn close_and_unknown_sessions() {
        let network = net(5);
        let mut engine = StreamingEngine::new(EngineConfig::default());
        let id = engine.open_session(cfg());
        assert_eq!(engine.tenant_count(), 1);
        assert!(engine.submit(id, MeasurementEpoch::new(network.clone(), 0)));
        assert_eq!(engine.pending(id), Some(1));
        assert!(engine.close_session(id));
        assert!(!engine.close_session(id));
        assert!(!engine.submit(id, MeasurementEpoch::new(network, 0)));
        assert_eq!(engine.pending(id), None);
        assert!(engine.tick().is_empty());
    }
}
