//! Uniform spatial hash grid for radius queries.
//!
//! Building a connectivity graph naively is O(N²) distance checks; the
//! simulator instead bins node positions into cells of the query radius and
//! only inspects the 3×3 cell neighborhood. For the workspace's typical
//! N ≤ ~10⁴ this keeps network construction effectively linear.

use crate::aabb::Aabb;
use crate::vec2::Vec2;

/// A grid over a bounding box holding indices of inserted points.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    bounds: Aabb,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
    points: Vec<Vec2>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with the given cell size (normally the
    /// query radius). Points outside `bounds` clamp into the border cells.
    pub fn build(bounds: Aabb, cell: f64, points: &[Vec2]) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let nx = (bounds.width() / cell).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell).ceil().max(1.0) as usize;
        let mut grid = SpatialGrid {
            bounds,
            cell,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            points: points.to_vec(),
        };
        for (i, &p) in points.iter().enumerate() {
            let c = grid.cell_of(p);
            grid.cells[c].push(i as u32);
        }
        grid
    }

    #[inline]
    fn cell_coords(&self, p: Vec2) -> (usize, usize) {
        let cx = ((p.x - self.bounds.min.x) / self.cell) as isize;
        let cy = ((p.y - self.bounds.min.y) / self.cell) as isize;
        (
            cx.clamp(0, self.nx as isize - 1) as usize,
            cy.clamp(0, self.ny as isize - 1) as usize,
        )
    }

    #[inline]
    fn cell_of(&self, p: Vec2) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.nx + cx
    }

    /// Indices of all points within `radius` of `query` (inclusive), in
    /// ascending index order. The query point itself is included when it was
    /// inserted and lies within the radius — callers filter self-matches.
    pub fn within(&self, query: Vec2, radius: f64) -> Vec<usize> {
        let r2 = radius * radius;
        let (cx, cy) = self.cell_coords(query);
        // How many cells the radius spans (cell size may differ from radius).
        let span = (radius / self.cell).ceil() as isize;
        let mut out = Vec::new();
        for dy in -span..=span {
            let y = cy as isize + dy;
            if y < 0 || y >= self.ny as isize {
                continue;
            }
            for dx in -span..=span {
                let x = cx as isize + dx;
                if x < 0 || x >= self.nx as isize {
                    continue;
                }
                for &idx in &self.cells[y as usize * self.nx + x as usize] {
                    if self.points[idx as usize].dist_sq(query) <= r2 {
                        out.push(idx as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff no points stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn brute_force(points: &[Vec2], q: Vec2, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(q) <= r * r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = Xoshiro256pp::seed_from(11);
        let bounds = Aabb::from_size(100.0, 100.0);
        let points: Vec<Vec2> = (0..500)
            .map(|_| rng.point_in(bounds.min, bounds.max))
            .collect();
        let grid = SpatialGrid::build(bounds, 15.0, &points);
        for _ in 0..50 {
            let q = rng.point_in(bounds.min, bounds.max);
            assert_eq!(grid.within(q, 15.0), brute_force(&points, q, 15.0));
        }
    }

    #[test]
    fn radius_larger_than_cell_size() {
        let mut rng = Xoshiro256pp::seed_from(12);
        let bounds = Aabb::from_size(50.0, 50.0);
        let points: Vec<Vec2> = (0..200)
            .map(|_| rng.point_in(bounds.min, bounds.max))
            .collect();
        let grid = SpatialGrid::build(bounds, 5.0, &points);
        for _ in 0..20 {
            let q = rng.point_in(bounds.min, bounds.max);
            assert_eq!(grid.within(q, 18.0), brute_force(&points, q, 18.0));
        }
    }

    #[test]
    fn includes_boundary_points() {
        let bounds = Aabb::from_size(10.0, 10.0);
        let points = vec![Vec2::new(0.0, 0.0), Vec2::new(3.0, 0.0)];
        let grid = SpatialGrid::build(bounds, 3.0, &points);
        // Exactly at radius: inclusive.
        assert_eq!(grid.within(Vec2::ZERO, 3.0), vec![0, 1]);
    }

    #[test]
    fn out_of_bounds_points_are_found() {
        let bounds = Aabb::from_size(10.0, 10.0);
        let points = vec![Vec2::new(-2.0, -2.0), Vec2::new(12.0, 12.0)];
        let grid = SpatialGrid::build(bounds, 2.0, &points);
        assert_eq!(grid.within(Vec2::new(-1.0, -1.0), 3.0), vec![0]);
        assert_eq!(grid.within(Vec2::new(11.0, 11.0), 3.0), vec![1]);
    }

    #[test]
    fn empty_grid() {
        let grid = SpatialGrid::build(Aabb::from_size(1.0, 1.0), 1.0, &[]);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.within(Vec2::ZERO, 10.0).is_empty());
    }
}
