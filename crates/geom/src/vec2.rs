//! 2-D vectors and points.
//!
//! [`Vec2`] doubles as a point type throughout the workspace: node positions,
//! particle locations, grid-cell centers, and gradient directions are all
//! `Vec2`. It is `Copy`, 16 bytes, and all operations are `#[inline]` so the
//! hot message-passing loops stay allocation-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector (or point) with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// Horizontal component (meters in simulation space).
    pub x: f64,
    /// Vertical component (meters in simulation space).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Constructs a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at angle `theta` radians from the positive x axis.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Both components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec2::new(v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (cheaper than [`Vec2::norm`], no sqrt).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in the same direction, or `None` for (near-)zero
    /// vectors where the direction is undefined.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 1e-12 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Unit vector in the same direction; falls back to the +x axis for the
    /// zero vector. Useful in gradient steps where any direction is acceptable
    /// at a singular point.
    #[inline]
    pub fn normalize_or_x(self) -> Vec2 {
        self.try_normalize().unwrap_or(Vec2::new(1.0, 0.0))
    }

    /// Angle in radians from the positive x axis, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Counter-clockwise rotation by `theta` radians.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Perpendicular vector (90° counter-clockwise rotation).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Component-wise clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Vec2, hi: Vec2) -> Vec2 {
        self.max(lo).min(hi)
    }

    /// `true` iff both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Arithmetic mean of a point set; `None` for an empty slice.
    pub fn centroid(points: &[Vec2]) -> Option<Vec2> {
        if points.is_empty() {
            return None;
        }
        let sum: Vec2 = points.iter().copied().sum();
        Some(sum / points.len() as f64)
    }

    /// Weighted mean of a point set. Returns `None` when the total weight is
    /// not strictly positive (all-zero weights, empty input, or negative sum).
    pub fn weighted_centroid(points: &[Vec2], weights: &[f64]) -> Option<Vec2> {
        assert_eq!(
            points.len(),
            weights.len(),
            "points/weights length mismatch"
        );
        let mut acc = Vec2::ZERO;
        let mut total = 0.0;
        for (&p, &w) in points.iter().zip(weights) {
            acc += p * w;
            total += w;
        }
        if total > 0.0 {
            Some(acc / total)
        } else {
            None
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::new(2.0, 3.0);
        v -= Vec2::new(1.0, 1.0);
        v *= 2.0;
        v /= 4.0;
        assert_eq!(v, Vec2::new(1.0, 1.5));
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec2::new(3.0, 4.0);
        assert!(approx(a.norm(), 5.0));
        assert!(approx(a.norm_sq(), 25.0));
        assert!(approx(a.dot(Vec2::new(1.0, 0.0)), 3.0));
        assert!(approx(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)), 1.0));
    }

    #[test]
    fn distances() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert!(approx(a.dist(b), 5.0));
        assert!(approx(a.dist_sq(b), 25.0));
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(0.0, 2.0).try_normalize().unwrap();
        assert!(approx(v.norm(), 1.0));
        assert!(Vec2::ZERO.try_normalize().is_none());
        assert_eq!(Vec2::ZERO.normalize_or_x(), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn rotation_and_angle() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(v.dist(Vec2::new(0.0, 1.0)) < 1e-12);
        assert!(approx(
            Vec2::new(0.0, 1.0).angle(),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(Vec2::from_angle(0.7).dist(Vec2::new(0.7f64.cos(), 0.7f64.sin())) < 1e-15);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -1.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
        assert_eq!(
            Vec2::new(-1.0, 10.0).clamp(Vec2::ZERO, Vec2::splat(4.0)),
            Vec2::new(0.0, 4.0)
        );
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 3.0),
        ];
        assert_eq!(Vec2::centroid(&pts), Some(Vec2::new(1.0, 1.0)));
        assert_eq!(Vec2::centroid(&[]), None);
    }

    #[test]
    fn weighted_centroid_behaviour() {
        let pts = [Vec2::new(0.0, 0.0), Vec2::new(4.0, 0.0)];
        let c = Vec2::weighted_centroid(&pts, &[1.0, 3.0]).unwrap();
        assert!(approx(c.x, 3.0));
        assert!(Vec2::weighted_centroid(&pts, &[0.0, 0.0]).is_none());
    }

    #[test]
    fn sum_iterator() {
        let total: Vec2 = (0..4).map(|i| Vec2::new(i as f64, 1.0)).sum();
        assert_eq!(total, Vec2::new(6.0, 4.0));
    }

    #[test]
    fn conversions_and_display() {
        let v: Vec2 = (1.5, -2.5).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.5, -2.5));
        assert_eq!(format!("{v}"), "(1.500, -2.500)");
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
