//! Spatial partitioning of node sets into contiguous tiles with halos.
//!
//! Sharded BP execution needs the network cut into spatially contiguous
//! pieces: belief-propagation messages only travel one hop per
//! iteration, so a shard can sweep its interior independently and
//! reconcile with its neighbors through a thin boundary layer. This
//! module owns the geometry half of that story:
//!
//! - **Partition**: the bounding box is cut into a `tiles_x × tiles_y`
//!   grid and every node is assigned to exactly one tile by its
//!   position (positions outside the box clamp into the border tiles,
//!   the same convention as [`SpatialGrid`]). The result is a true
//!   partition — each node appears in exactly one shard's member list.
//! - **Halo**: per shard, the set of *foreign* nodes within
//!   `halo_radius` of any member, extracted with the spatial hash
//!   grid's radius query ([`SpatialGrid::within`]) so the halo is
//!   consistent with neighbor queries made at the same radius. With
//!   `halo_radius` at least the maximum edge length of a graph built on
//!   the same positions, every graph neighbor of a member is either a
//!   member or in the halo.
//!
//! The consumer (`wsnloc-bayes`'s sharded engine) additionally closes
//! halos over the actual factor-graph adjacency, so inference never
//! depends on the geometric radius being a true bound.

use crate::aabb::Aabb;
use crate::grid::SpatialGrid;
use crate::vec2::Vec2;

/// One tile of a [`ShardLayout`]: the nodes it owns and the foreign
/// nodes it must mirror to run locally.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// Nodes assigned to this tile, ascending. Every node of the layout
    /// appears in exactly one shard's `members`.
    pub members: Vec<usize>,
    /// Foreign nodes within the halo radius of any member, ascending.
    /// Disjoint from `members`.
    pub halo: Vec<usize>,
}

impl Shard {
    /// `true` iff the tile owns no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A spatial partition of a node set into rectangular tiles plus
/// per-tile halos. See the module docs for the guarantees.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    bounds: Aabb,
    tiles_x: usize,
    tiles_y: usize,
    halo_radius: f64,
    shard_of: Vec<usize>,
    shards: Vec<Shard>,
}

impl ShardLayout {
    /// Partitions `positions` into a `tiles_x × tiles_y` tile grid over
    /// `bounds` and extracts each tile's halo at `halo_radius`.
    ///
    /// `halo_radius` must be positive and finite; tile counts must be
    /// at least 1. Empty tiles are kept (with empty member and halo
    /// lists) so shard indices stay a pure function of geometry.
    pub fn build(
        bounds: Aabb,
        tiles_x: usize,
        tiles_y: usize,
        positions: &[Vec2],
        halo_radius: f64,
    ) -> ShardLayout {
        assert!(tiles_x >= 1 && tiles_y >= 1, "need at least one tile");
        assert!(
            halo_radius > 0.0 && halo_radius.is_finite(),
            "halo radius must be positive and finite"
        );
        let n = positions.len();
        let tile_w = bounds.width() / tiles_x as f64;
        let tile_h = bounds.height() / tiles_y as f64;
        let tile_of = |p: Vec2| -> usize {
            // Degenerate bounds (zero width/height) collapse onto tile 0
            // along that axis via the clamp.
            let tx = if tile_w > 0.0 {
                (((p.x - bounds.min.x) / tile_w) as isize).clamp(0, tiles_x as isize - 1) as usize
            } else {
                0
            };
            let ty = if tile_h > 0.0 {
                (((p.y - bounds.min.y) / tile_h) as isize).clamp(0, tiles_y as isize - 1) as usize
            } else {
                0
            };
            ty * tiles_x + tx
        };
        let mut shards = vec![Shard::default(); tiles_x * tiles_y];
        let mut shard_of = Vec::with_capacity(n);
        for (u, &p) in positions.iter().enumerate() {
            let s = tile_of(p);
            shard_of.push(s);
            shards[s].members.push(u);
        }
        // Halo extraction through the spatial hash: for each member, the
        // radius query returns every node within `halo_radius`; foreign
        // hits accumulate into the halo. Members are visited in
        // ascending order and hits come back sorted, so a sort + dedup
        // leaves a deterministic ascending list.
        if n > 0 {
            let grid = SpatialGrid::build(bounds, halo_radius, positions);
            for (s, shard) in shards.iter_mut().enumerate() {
                for &u in &shard.members {
                    for v in grid.within(positions[u], halo_radius) {
                        if shard_of[v] != s {
                            shard.halo.push(v);
                        }
                    }
                }
                shard.halo.sort_unstable();
                shard.halo.dedup();
            }
        }
        ShardLayout {
            bounds,
            tiles_x,
            tiles_y,
            halo_radius,
            shard_of,
            shards,
        }
    }

    /// Square tile counts sized so shards hold roughly
    /// `target_shard_nodes` nodes each under a uniform deployment:
    /// `ceil(sqrt(ceil(n / target)))` tiles per axis, at least 1.
    #[must_use]
    pub fn tiles_for_target(node_count: usize, target_shard_nodes: usize) -> (usize, usize) {
        let target = target_shard_nodes.max(1);
        let shards = node_count.div_ceil(target).max(1);
        let per_axis = (shards as f64).sqrt().ceil().max(1.0) as usize;
        (per_axis, per_axis)
    }

    /// The partitioned bounding box.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Tile counts along x and y.
    #[must_use]
    pub fn tiles(&self) -> (usize, usize) {
        (self.tiles_x, self.tiles_y)
    }

    /// The halo radius the layout was extracted at.
    #[must_use]
    pub fn halo_radius(&self) -> f64 {
        self.halo_radius
    }

    /// Number of tiles (including empty ones).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of partitioned nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// `true` iff no nodes were partitioned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// All tiles, indexed by `tile_y * tiles_x + tile_x`.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The tile owning node `u`.
    #[must_use]
    pub fn shard_of(&self, u: usize) -> usize {
        self.shard_of[u]
    }

    /// Number of tiles that own at least one node.
    #[must_use]
    pub fn occupied_shards(&self) -> usize {
        self.shards.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    fn random_layout(
        rng: &mut crate::rng::Xoshiro256pp,
    ) -> (Aabb, Vec<Vec2>, usize, usize, f64, ShardLayout) {
        let side = rng.range(50.0, 400.0);
        let bounds = Aabb::from_size(side, side);
        let n = 20 + rng.index(300);
        let positions: Vec<Vec2> = (0..n)
            .map(|_| rng.point_in(bounds.min, bounds.max))
            .collect();
        let tiles_x = 1 + rng.index(5);
        let tiles_y = 1 + rng.index(5);
        let radius = rng.range(side / 20.0, side / 3.0);
        let layout = ShardLayout::build(bounds, tiles_x, tiles_y, &positions, radius);
        (bounds, positions, tiles_x, tiles_y, radius, layout)
    }

    #[test]
    fn partition_is_true_partition() {
        // Every node lands in exactly one shard's member list, and that
        // shard is the one `shard_of` reports.
        check::cases(40, |_case, rng| {
            let (_, positions, tiles_x, tiles_y, _, layout) = random_layout(rng);
            assert_eq!(layout.shard_count(), tiles_x * tiles_y);
            assert_eq!(layout.len(), positions.len());
            let mut seen = vec![0usize; positions.len()];
            for (s, shard) in layout.shards().iter().enumerate() {
                for &u in &shard.members {
                    seen[u] += 1;
                    assert_eq!(layout.shard_of(u), s);
                }
                // Members ascending, halo ascending + disjoint.
                assert!(shard.members.windows(2).all(|w| w[0] < w[1]));
                assert!(shard.halo.windows(2).all(|w| w[0] < w[1]));
                for &h in &shard.halo {
                    assert_ne!(layout.shard_of(h), s);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "node in != 1 shard");
        });
    }

    #[test]
    fn halos_match_spatial_hash_neighbor_query() {
        // halo(s) must equal the set of foreign nodes the spatial hash
        // returns within the radius of any member — computed here the
        // brute-force way.
        check::cases(40, |_case, rng| {
            let (_, positions, _, _, radius, layout) = random_layout(rng);
            for (s, shard) in layout.shards().iter().enumerate() {
                let mut expect: Vec<usize> = (0..positions.len())
                    .filter(|&v| {
                        layout.shard_of(v) != s
                            && shard
                                .members
                                .iter()
                                .any(|&u| positions[u].dist_sq(positions[v]) <= radius * radius)
                    })
                    .collect();
                expect.sort_unstable();
                assert_eq!(shard.halo, expect, "halo mismatch for shard {s}");
            }
        });
    }

    #[test]
    fn single_tile_owns_everything_with_empty_halo() {
        let bounds = Aabb::from_size(100.0, 100.0);
        let positions: Vec<Vec2> = (0..25)
            .map(|i| Vec2::new(4.0 * i as f64, 96.0 - 3.0 * i as f64))
            .collect();
        let layout = ShardLayout::build(bounds, 1, 1, &positions, 30.0);
        assert_eq!(layout.shard_count(), 1);
        assert_eq!(layout.occupied_shards(), 1);
        assert_eq!(layout.shards()[0].members, (0..25).collect::<Vec<_>>());
        assert!(layout.shards()[0].halo.is_empty());
    }

    #[test]
    fn out_of_bounds_positions_clamp_into_border_tiles() {
        let bounds = Aabb::from_size(10.0, 10.0);
        let positions = vec![Vec2::new(-5.0, -5.0), Vec2::new(15.0, 15.0)];
        let layout = ShardLayout::build(bounds, 2, 2, &positions, 1.0);
        assert_eq!(layout.shard_of(0), 0);
        assert_eq!(layout.shard_of(1), 3);
    }

    #[test]
    fn tiles_for_target_scales_with_node_count() {
        assert_eq!(ShardLayout::tiles_for_target(100, 1000), (1, 1));
        assert_eq!(ShardLayout::tiles_for_target(1000, 1000), (1, 1));
        assert_eq!(ShardLayout::tiles_for_target(4000, 1000), (2, 2));
        assert_eq!(ShardLayout::tiles_for_target(1_000_000, 40_000), (5, 5));
        // Degenerate inputs stay usable.
        assert_eq!(ShardLayout::tiles_for_target(0, 1000), (1, 1));
        assert_eq!(ShardLayout::tiles_for_target(10, 0), (4, 4));
    }

    #[test]
    fn empty_position_set_builds() {
        let layout = ShardLayout::build(Aabb::from_size(1.0, 1.0), 3, 3, &[], 0.5);
        assert!(layout.is_empty());
        assert_eq!(layout.shard_count(), 9);
        assert_eq!(layout.occupied_shards(), 0);
    }
}
