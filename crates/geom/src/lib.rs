//! # wsnloc-geom
//!
//! Geometry, small dense linear algebra, statistics, and deterministic random
//! number generation for the `wsnloc` cooperative-localization workspace.
//!
//! Everything in this crate is self-contained (no external math dependencies)
//! and deterministic: all randomness flows through [`rng::Xoshiro256pp`]
//! streams derived from explicit `u64` seeds, so every simulated network and
//! every Monte-Carlo experiment in the workspace is exactly reproducible.
//!
//! Modules:
//! - [`vec2`] — 2-D vectors/points with the usual algebra.
//! - [`aabb`] — axis-aligned bounding boxes.
//! - [`shape`] — deployment-field shapes (rectangle, disk, annulus, C/L shapes,
//!   polygons) with containment tests and rejection sampling.
//! - [`matrix`] — row-major dense matrices with Cholesky/LU solvers and a
//!   Jacobi symmetric eigendecomposition (used by MDS-MAP and the CRLB).
//! - [`stats`] — summary statistics, percentiles, histograms, Welford online
//!   accumulation.
//! - [`rng`] — xoshiro256++ generator, SplitMix64 seeding, normal/exponential
//!   sampling, weighted choice, shuffling, and stream splitting.
//! - [`kde`] — Gaussian kernel density estimation with Silverman bandwidths.
//! - [`grid`] — a uniform spatial hash grid for radius neighbor queries.
//! - [`partition`] — spatial tiling of node sets into shards with halos
//!   (the geometry layer of sharded BP execution).
//! - [`check`] — a miniature seeded property-test harness (the workspace
//!   builds without registry access, so `proptest` is unavailable).

#![warn(missing_docs)]

pub mod aabb;
pub mod check;
pub mod grid;
pub mod kde;
pub mod matrix;
pub mod partition;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod vec2;

pub use aabb::Aabb;
pub use matrix::Matrix;
pub use partition::{Shard, ShardLayout};
pub use rng::Xoshiro256pp;
pub use shape::Shape;
pub use vec2::Vec2;
