//! Small dense linear algebra.
//!
//! A row-major `f64` matrix with exactly the operations the workspace needs:
//! least-squares solves for multilateration (via normal equations +
//! Cholesky), LU with partial pivoting for general solves, symmetric
//! eigendecomposition (cyclic Jacobi) for MDS-MAP and the Fisher-information
//! analysis, and positive-definite inversion for the CRLB.
//!
//! Sizes here are at most a few thousand on a side (the CRLB Fisher matrix is
//! `2N × 2N`), so cubic dense algorithms are appropriate; no attempt is made
//! at blocking or BLAS-style tuning beyond keeping the inner loops on
//! contiguous rows, per the perf-book guidance of iterating row-major data in
//! row order.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense matrix.
///
/// ```
/// use wsnloc_geom::Matrix;
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve_spd(&[1.0, 2.0]).unwrap();
/// let b = a.mul_vec(&x);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a nested row slice; panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major vector; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product; panics on shape mismatch.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "mul_vec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Scales every entry.
    pub fn scaled(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` iff square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factor `L` (lower triangular, `A = L Lᵀ`) of a symmetric
    /// positive-definite matrix. Returns `None` when a pivot is not strictly
    /// positive (matrix not SPD or numerically singular).
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `A x = b` for SPD `A` via Cholesky. `None` if not SPD.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        let n = self.rows;
        assert_eq!(b.len(), n, "solve_spd rhs length mismatch");
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Some(x)
    }

    /// Inverse of an SPD matrix via Cholesky column solves. `None` if not SPD.
    pub fn inverse_spd(&self) -> Option<Matrix> {
        let n = self.rows;
        let l = self.cholesky()?;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e.iter_mut().for_each(|x| *x = 0.0);
            e[col] = 1.0;
            // Reuse the factor: forward then back substitution.
            let mut y = vec![0.0; n];
            for i in 0..n {
                let mut sum = e[i];
                for k in 0..i {
                    sum -= l[(i, k)] * y[k];
                }
                y[i] = sum / l[(i, i)];
            }
            for i in (0..n).rev() {
                let mut sum = y[i];
                for k in (i + 1)..n {
                    sum -= l[(k, i)] * inv[(k, col)];
                }
                inv[(i, col)] = sum / l[(i, i)];
            }
        }
        Some(inv)
    }

    /// Solves `A x = b` with LU decomposition and partial pivoting. Returns
    /// `None` for (numerically) singular `A`.
    pub fn solve_lu(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_lu requires square matrix");
        let n = self.rows;
        assert_eq!(b.len(), n, "solve_lu rhs length mismatch");
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Pivot: largest magnitude in the column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[perm[col] * n + col].abs();
            for r in (col + 1)..n {
                let v = a[perm[r] * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-13 {
                return None;
            }
            perm.swap(col, pivot_row);
            let prow = perm[col];
            let pv = a[prow * n + col];
            for &row in &perm[(col + 1)..] {
                let factor = a[row * n + col] / pv;
                a[row * n + col] = factor;
                for c in (col + 1)..n {
                    a[row * n + c] -= factor * a[prow * n + c];
                }
            }
        }
        // Apply permutation to b and do forward substitution with unit L.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = x[perm[i]];
            for k in 0..i {
                sum -= a[perm[i] * n + k] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= a[perm[i] * n + k] * x[k];
            }
            x[i] = sum / a[perm[i] * n + i];
        }
        Some(x)
    }

    /// Least-squares solution of the (possibly overdetermined) system
    /// `A x ≈ b` via the normal equations `AᵀA x = Aᵀb` with a tiny ridge for
    /// conditioning. Returns `None` when the normal matrix is singular.
    pub fn solve_least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, b.len(), "least-squares rhs length mismatch");
        let at = self.transpose();
        let mut ata = &at * self;
        let atb = at.mul_vec(b);
        // Ridge scaled to the matrix magnitude keeps near-degenerate anchor
        // geometries solvable without visibly biasing good ones.
        let ridge = 1e-10 * (1.0 + ata.frobenius_norm());
        for i in 0..ata.rows() {
            ata[(i, i)] += ridge;
        }
        ata.solve_spd(&atb).or_else(|| ata.solve_lu(&atb))
    }

    /// Symmetric eigendecomposition by the cyclic Jacobi method.
    ///
    /// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
    /// descending order and `eigenvectors.row(k)` NOT the convention — the
    /// k-th eigenvector is the k-th **column** of the returned matrix.
    /// Panics if the matrix is not square; the caller is responsible for
    /// symmetry (asymmetric parts are implicitly averaged by the rotations).
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(self.rows, self.cols, "eigen requires square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);

        for _sweep in 0..100 {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-12 * (1.0 + a.frobenius_norm()) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = 0.5
                        * (aqq - app).atan2(2.0 * apq)
                        * if (aqq - app).abs() < 1e-300 && apq.abs() < 1e-300 {
                            0.0
                        } else {
                            1.0
                        };
                    // Classic stable rotation computation.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let _ = theta;
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Update A = Jᵀ A J on rows/cols p and q.
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| a[(j, j)].total_cmp(&a[(i, i)]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..n {
                vectors[(row, new_col)] = v[(row, old_col)];
            }
        }
        (eigenvalues, vectors)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps both the rhs row and the output row
        // contiguous in the inner loop (cache-friendly for row-major data).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // Sparsity fast path: skip structural zeros. Exact bit test,
                // not a tolerance comparison — ±0.0 only.
                if aik.abs().to_bits() == 0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let id = Matrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 7.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(&a * &i3, a);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let v = vec![1.0, -1.0];
        assert_eq!(a.mul_vec(&v), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let lt = l.transpose();
        let recon = &l * &lt;
        assert!((&recon - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve_spd(&[1.0, 2.0]).unwrap();
        // Solution of [[4,1],[1,3]] x = [1,2]: x = [1/11, 7/11].
        assert!(approx(x[0], 1.0 / 11.0, 1e-12));
        assert!(approx(x[1], 7.0 / 11.0, 1e-12));
    }

    #[test]
    fn solve_lu_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let b = [-8.0, 0.0, 3.0];
        let x = a.solve_lu(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!(approx(*ri, *bi, 1e-10));
        }
    }

    #[test]
    fn solve_lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve_lu(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn inverse_spd_roundtrip() {
        let a = Matrix::from_rows(&[&[5.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 3.0]]);
        let inv = a.inverse_spd().unwrap();
        let prod = &a * &inv;
        assert!((&prod - &Matrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 2x + 1 from noisy-free samples: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(std::vec::Vec::as_slice).collect();
        let a = Matrix::from_rows(&refs);
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let sol = a.solve_least_squares(&b).unwrap();
        assert!(approx(sol[0], 2.0, 1e-6));
        assert!(approx(sol[1], 1.0, 1e-6));
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, vecs) = a.symmetric_eigen();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // First eigenvector along x.
        assert!(vecs[(0, 0)].abs() > 0.999);
    }

    #[test]
    fn symmetric_eigen_known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = a.symmetric_eigen();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // A v = λ v for the first pair.
        let v0 = [vecs[(0, 0)], vecs[(1, 0)]];
        let av = a.mul_vec(&v0);
        assert!(approx(av[0], 3.0 * v0[0], 1e-9));
        assert!(approx(av[1], 3.0 * v0[1], 1e-9));
    }

    #[test]
    fn symmetric_eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -0.5, 0.2],
            &[1.0, 3.0, 0.7, -0.1],
            &[-0.5, 0.7, 2.0, 0.3],
            &[0.2, -0.1, 0.3, 1.0],
        ]);
        let (vals, v) = a.symmetric_eigen();
        // Reconstruct A = V diag(vals) Vᵀ.
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = vals[i];
        }
        let recon = &(&v * &d) * &v.transpose();
        assert!((&recon - &a).frobenius_norm() < 1e-8);
        // Eigenvalues descending.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let (_, v) = a.symmetric_eigen();
        let vtv = &v.transpose() * &v;
        assert!((&vtv - &Matrix::identity(3)).frobenius_norm() < 1e-9);
    }

    #[test]
    fn trace_and_symmetry() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert_eq!(a.trace(), 6.0);
        assert!(a.is_symmetric(1e-12));
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]);
        assert!(!b.is_symmetric(1e-12));
    }
}
