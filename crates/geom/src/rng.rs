//! Deterministic random number generation.
//!
//! The workspace never uses OS entropy: every stochastic component (node
//! deployment, measurement noise, particle sampling, Monte-Carlo trials) draws
//! from an explicit-seed [`Xoshiro256pp`] stream. Streams can be *split*
//! ([`Xoshiro256pp::split`]) to hand independent sub-streams to parallel
//! workers, which keeps rayon-parallel experiment runs bit-identical to their
//! sequential counterparts regardless of scheduling.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//! as its authors recommend; both are implemented here so the crate stays
//! dependency-free.

use crate::vec2::Vec2;

/// SplitMix64 step — used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator with convenience sampling methods.
///
/// Period 2²⁵⁶−1; passes BigCrush. Not cryptographic — fine for simulation.
///
/// ```
/// use wsnloc_geom::rng::Xoshiro256pp;
/// let mut rng = Xoshiro256pp::seed_from(42);
/// let x = rng.range(0.0, 10.0);
/// assert!((0.0..10.0).contains(&x));
/// // Same seed, same stream:
/// assert_eq!(Xoshiro256pp::seed_from(42).next_u64(),
///            Xoshiro256pp::seed_from(42).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_cache: Option<f64>,
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp {
            s,
            gauss_cache: None,
        }
    }

    /// Derives an independent sub-stream labeled by `tag`.
    ///
    /// Does not advance `self`. Identical `(self state, tag)` pairs yield
    /// identical sub-streams, which is what makes parallel fan-out
    /// deterministic: worker `i` always receives `rng.split(i as u64)`.
    pub fn split(&self, tag: u64) -> Xoshiro256pp {
        // Mix the current state with the tag through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[1].rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp {
            s,
            gauss_cache: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range requires lo <= hi");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method. Panics on
    /// `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let n = n as u64;
        // Multiply-shift rejection sampling (Lemire 2019).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal sample (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        // Avoid u == 0 so ln is finite.
        let u = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = std::f64::consts::TAU * v;
        let (s, c) = theta.sin_cos();
        self.gauss_cache = Some(r * s);
        r * c
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given rate `lambda` (> 0), via inversion.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Uniform point inside an axis-aligned box.
    #[inline]
    pub fn point_in(&mut self, min: Vec2, max: Vec2) -> Vec2 {
        Vec2::new(self.range(min.x, max.x), self.range(min.y, max.y))
    }

    /// Uniform point inside the disk of radius `r` centered at `c`
    /// (inverse-CDF radius, not rejection).
    pub fn point_in_disk(&mut self, c: Vec2, r: f64) -> Vec2 {
        let rho = r * self.f64().sqrt();
        let theta = self.range(0.0, std::f64::consts::TAU);
        c + Vec2::from_angle(theta) * rho
    }

    /// Isotropic 2-D Gaussian sample centered at `mean` with per-axis
    /// standard deviation `sigma`.
    #[inline]
    pub fn gaussian_point(&mut self, mean: Vec2, sigma: f64) -> Vec2 {
        mean + Vec2::new(self.gaussian(), self.gaussian()) * sigma
    }

    /// Draws an index with probability proportional to `weights[i]`.
    ///
    /// Returns `None` when the weight sum is not strictly positive. Negative
    /// weights are treated as zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.f64() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if w > 0.0 {
                last_positive = Some(i);
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating-point slack: fall back to the last positive-weight entry.
        last_positive
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir-free partial
    /// Fisher–Yates). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// Systematic resampling: draws `count` indices from the categorical
/// distribution given by `weights` using a single uniform offset, giving the
/// minimum-variance unbiased resample used by particle filters.
///
/// Returns `None` if the weights do not sum to a positive finite value.
pub fn systematic_resample(
    rng: &mut Xoshiro256pp,
    weights: &[f64],
    count: usize,
) -> Option<Vec<usize>> {
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 || !total.is_finite() || count == 0 {
        return if count == 0 { Some(Vec::new()) } else { None };
    }
    let step = total / count as f64;
    let mut position = rng.f64() * step;
    let mut out = Vec::with_capacity(count);
    let mut cumulative = 0.0;
    let mut i = 0usize;
    for _ in 0..count {
        while cumulative + weights[i].max(0.0) < position {
            cumulative += weights[i].max(0.0);
            i += 1;
            if i >= weights.len() {
                // Numerical slack at the tail.
                i = weights.len() - 1;
                break;
            }
        }
        out.push(i);
        position += step;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256pp::seed_from(42);
        let mut b = Xoshiro256pp::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let root = Xoshiro256pp::seed_from(7);
        let mut s1 = root.split(1);
        let mut s1b = root.split(1);
        let mut s2 = root.split(2);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = Xoshiro256pp::seed_from(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn index_is_unbiased_over_small_range() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.index(5)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256pp::seed_from(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn point_in_disk_stays_in_disk() {
        let mut rng = Xoshiro256pp::seed_from(7);
        let c = Vec2::new(3.0, -1.0);
        for _ in 0..5_000 {
            let p = rng.point_in_disk(c, 2.5);
            assert!(p.dist(c) <= 2.5 + 1e-12);
        }
    }

    #[test]
    fn disk_sampling_is_area_uniform() {
        // Inner disk of half radius should receive ~25% of samples.
        let mut rng = Xoshiro256pp::seed_from(8);
        let n = 100_000;
        let inner = (0..n)
            .filter(|_| rng.point_in_disk(Vec2::ZERO, 1.0).norm() < 0.5)
            .count();
        let frac = inner as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "inner fraction {frac}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256pp::seed_from(9);
        let weights = [1.0, 0.0, 3.0];
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0 {frac0}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut rng = Xoshiro256pp::seed_from(10);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[-1.0, -2.0]), None);
        assert_eq!(rng.weighted_index(&[0.0, 5.0, 0.0]), Some(1));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::seed_from(12);
        let picked = rng.sample_indices(20, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(picked.iter().all(|&i| i < 20));
    }

    #[test]
    fn systematic_resample_matches_weights() {
        let mut rng = Xoshiro256pp::seed_from(13);
        let weights = [0.1, 0.7, 0.2];
        let idx = systematic_resample(&mut rng, &weights, 10_000).unwrap();
        let mut counts = [0usize; 3];
        for i in idx {
            counts[i] += 1;
        }
        assert!((counts[1] as f64 / 10_000.0 - 0.7).abs() < 0.01);
    }

    #[test]
    fn systematic_resample_degenerate() {
        let mut rng = Xoshiro256pp::seed_from(14);
        assert!(systematic_resample(&mut rng, &[0.0, 0.0], 5).is_none());
        assert_eq!(
            systematic_resample(&mut rng, &[1.0], 0).unwrap(),
            Vec::<usize>::new()
        );
        // Single positive weight: every draw is that index.
        let idx = systematic_resample(&mut rng, &[0.0, 2.0, 0.0], 7).unwrap();
        assert!(idx.iter().all(|&i| i == 1));
    }
}
