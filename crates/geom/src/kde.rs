//! Gaussian kernel density estimation over 2-D point sets.
//!
//! Nonparametric belief propagation represents messages as weighted particle
//! sets and needs (a) a bandwidth rule and (b) cheap density evaluation when
//! forming message products. Both live here.

use crate::vec2::Vec2;

/// Isotropic Gaussian kernel value at squared distance `d2` with bandwidth
/// (standard deviation) `h`, including the 2-D normalizing constant.
#[inline]
pub fn gaussian_kernel(d2: f64, h: f64) -> f64 {
    let h2 = h * h;
    (-(d2) / (2.0 * h2)).exp() / (std::f64::consts::TAU * h2)
}

/// Silverman's rule-of-thumb bandwidth for a weighted 2-D sample.
///
/// Uses the weighted standard deviation averaged over both axes and the
/// effective sample size `ESS = (Σw)² / Σw²` so that degenerate weight
/// distributions get wider kernels. Returns `min_bandwidth` when the sample
/// is empty or has collapsed to a point.
pub fn silverman_bandwidth(points: &[Vec2], weights: &[f64], min_bandwidth: f64) -> f64 {
    assert_eq!(
        points.len(),
        weights.len(),
        "points/weights length mismatch"
    );
    let total: f64 = weights.iter().sum();
    if points.is_empty() || total <= 0.0 {
        return min_bandwidth;
    }
    let mean = points
        .iter()
        .zip(weights)
        .fold(Vec2::ZERO, |acc, (&p, &w)| acc + p * w)
        / total;
    let mut var = 0.0;
    let mut sq_weight = 0.0;
    for (&p, &w) in points.iter().zip(weights) {
        var += w * p.dist_sq(mean);
        sq_weight += w * w;
    }
    // Per-axis variance: the 2-D squared deviation splits across two axes.
    let sigma = (var / total / 2.0).sqrt();
    let ess = if sq_weight > 0.0 {
        total * total / sq_weight
    } else {
        1.0
    };
    // d = 2 → exponent -1/(d+4) = -1/6; constant n^{-1/6}.
    let h = sigma * ess.powf(-1.0 / 6.0);
    h.max(min_bandwidth)
}

/// A weighted Gaussian-mixture density over the plane (the KDE of a particle
/// set). Weights are normalized at construction.
#[derive(Debug, Clone)]
pub struct Kde {
    points: Vec<Vec2>,
    weights: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE; weights are normalized to sum to one. Panics when the
    /// inputs are empty, mismatched, or the weights are not summable to a
    /// positive value.
    pub fn new(points: Vec<Vec2>, mut weights: Vec<f64>, bandwidth: f64) -> Self {
        assert_eq!(
            points.len(),
            weights.len(),
            "points/weights length mismatch"
        );
        assert!(!points.is_empty(), "KDE needs at least one particle");
        assert!(bandwidth > 0.0, "KDE bandwidth must be positive");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "KDE weights must sum to a positive finite value"
        );
        for w in &mut weights {
            *w /= total;
        }
        Kde {
            points,
            weights,
            bandwidth,
        }
    }

    /// Uniform-weight KDE with a Silverman bandwidth (floored at
    /// `min_bandwidth`).
    pub fn from_points(points: Vec<Vec2>, min_bandwidth: f64) -> Self {
        let w = vec![1.0; points.len()];
        let h = silverman_bandwidth(&points, &w, min_bandwidth);
        Kde::new(points, w, h)
    }

    /// The kernel bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The particle support.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Density at `x` (integrates to one over the plane).
    pub fn density(&self, x: Vec2) -> f64 {
        let mut acc = 0.0;
        for (&p, &w) in self.points.iter().zip(&self.weights) {
            acc += w * gaussian_kernel(x.dist_sq(p), self.bandwidth);
        }
        acc
    }

    /// Mean of the mixture (equals the weighted particle mean).
    pub fn mean(&self) -> Vec2 {
        self.points
            .iter()
            .zip(&self.weights)
            .fold(Vec2::ZERO, |acc, (&p, &w)| acc + p * w)
    }

    /// Draws one sample: pick a component by weight, then jitter by the
    /// kernel.
    pub fn sample(&self, rng: &mut crate::rng::Xoshiro256pp) -> Vec2 {
        // Weights are normalized at construction; if the mass has somehow
        // degenerated to zero, fall back to the first component.
        let idx = rng.weighted_index(&self.weights).unwrap_or(0);
        rng.gaussian_point(self.points[idx], self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn kernel_is_normalized() {
        // Numerically integrate the kernel on a grid.
        let h = 0.7;
        let step = 0.05;
        let mut acc = 0.0;
        let half = 6.0 * h;
        let n = (2.0 * half / step) as i64;
        for i in 0..n {
            for j in 0..n {
                let x = -half + (i as f64 + 0.5) * step;
                let y = -half + (j as f64 + 0.5) * step;
                acc += gaussian_kernel(x * x + y * y, h) * step * step;
            }
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral {acc}");
    }

    #[test]
    fn kernel_peaks_at_zero() {
        assert!(gaussian_kernel(0.0, 1.0) > gaussian_kernel(0.5, 1.0));
        assert!(gaussian_kernel(0.5, 1.0) > gaussian_kernel(2.0, 1.0));
    }

    #[test]
    fn silverman_scales_with_spread() {
        let tight: Vec<Vec2> = (0..50).map(|i| Vec2::new(i as f64 * 0.01, 0.0)).collect();
        let wide: Vec<Vec2> = (0..50).map(|i| Vec2::new(i as f64, 0.0)).collect();
        let w = vec![1.0; 50];
        let ht = silverman_bandwidth(&tight, &w, 1e-9);
        let hw = silverman_bandwidth(&wide, &w, 1e-9);
        assert!(hw > 10.0 * ht, "tight {ht} wide {hw}");
    }

    #[test]
    fn silverman_floors_degenerate_samples() {
        let pts = vec![Vec2::new(1.0, 1.0); 10];
        let w = vec![1.0; 10];
        assert_eq!(silverman_bandwidth(&pts, &w, 0.5), 0.5);
        assert_eq!(silverman_bandwidth(&[], &[], 0.25), 0.25);
    }

    #[test]
    fn kde_density_positive_and_peaked() {
        let pts = vec![Vec2::ZERO, Vec2::new(10.0, 0.0)];
        let kde = Kde::new(pts, vec![1.0, 1.0], 1.0);
        assert!(kde.density(Vec2::ZERO) > kde.density(Vec2::new(5.0, 0.0)));
        assert!(kde.density(Vec2::new(5.0, 0.0)) > 0.0);
    }

    #[test]
    fn kde_weights_normalize() {
        let kde = Kde::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)], vec![2.0, 6.0], 0.5);
        assert!((kde.weights()[0] - 0.25).abs() < 1e-12);
        assert!((kde.weights()[1] - 0.75).abs() < 1e-12);
        assert!((kde.mean().x - 0.75).abs() < 1e-12);
    }

    #[test]
    fn kde_sampling_tracks_mixture() {
        let kde = Kde::new(vec![Vec2::ZERO, Vec2::new(100.0, 0.0)], vec![0.2, 0.8], 1.0);
        let mut rng = Xoshiro256pp::seed_from(7);
        let n = 20_000;
        let right = (0..n).filter(|_| kde.sample(&mut rng).x > 50.0).count();
        let frac = right as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "right fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn empty_kde_panics() {
        let _ = Kde::new(vec![], vec![], 1.0);
    }

    #[test]
    fn from_points_uses_silverman() {
        let pts: Vec<Vec2> = (0..100)
            .map(|i| Vec2::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let kde = Kde::from_points(pts, 1e-6);
        assert!(kde.bandwidth() > 0.1);
    }
}
