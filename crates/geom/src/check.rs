//! A miniature deterministic property-test harness.
//!
//! The build environment pins this workspace to zero external crates, so
//! `proptest` is unavailable; this module supplies the slice of it the
//! workspace's property suites need: run a closure over many seeded random
//! cases and, on failure, report which case (and therefore which RNG
//! stream) reproduces it. There is no shrinking — cases are cheap and the
//! failing seed is printed, which has proven enough to debug numerics.
//!
//! ```
//! use wsnloc_geom::check;
//!
//! check::cases(32, |_case, rng| {
//!     let x = rng.range(-1e6, 1e6);
//!     assert!((x + 1.0) - 1.0 - x < 1e-6);
//! });
//! ```

use crate::rng::Xoshiro256pp;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Golden-ratio-derived master seed; chosen once so failures are stable
/// across runs and machines.
const MASTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG for a given case index — exposed so a failing case can
/// be replayed in isolation from a debugger or a scratch test.
pub fn case_rng(case: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from(MASTER_SEED ^ case.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Runs `property` over `n` independently seeded random cases.
///
/// Panics (re-raising the property's own panic) as soon as one case fails,
/// after printing the failing case index to stderr.
pub fn cases<F>(n: u64, mut property: F)
where
    F: FnMut(u64, &mut Xoshiro256pp),
{
    for case in 0..n {
        let mut rng = case_rng(case);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(case, &mut rng)));
        if let Err(panic) = outcome {
            eprintln!("property failed on case {case} of {n}; replay with check::case_rng({case})");
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut seen = 0u64;
        cases(10, |case, _rng| {
            assert_eq!(case, seen);
            seen += 1;
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn case_rngs_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|c| case_rng(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| case_rng(c).next_u64()).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
    }

    #[test]
    fn failing_case_propagates_panic() {
        let result = catch_unwind(|| {
            cases(5, |case, _rng| assert!(case < 3, "boom at {case}"));
        });
        assert!(result.is_err());
    }
}
