//! Summary statistics for experiment reporting.
//!
//! The evaluation harness reports mean / median / percentile localization
//! errors, their CDFs, and confidence half-widths across Monte-Carlo trials.
//! Everything here is plain `f64` slice math with NaN-hostile behaviour:
//! inputs are asserted finite in debug builds and NaNs would poison sorts,
//! so generators upstream must never emit them.

/// Arithmetic mean; `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n−1 denominator); `None` with fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation; `None` with fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Root mean square; `None` on empty input.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

/// Sorts a copy of `xs` ascending under IEEE-754 total order
/// ([`f64::total_cmp`]): NaNs sort to the ends instead of poisoning the
/// comparator. The shared helper behind every order-statistic routine here.
pub fn sorted_total(xs: &[f64]) -> Vec<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted
}

/// Quantile with linear interpolation between order statistics
/// (the "R-7" definition used by NumPy's default). `q` is clamped to [0, 1].
/// `None` on empty input.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(quantile_sorted(&sorted_total(xs), q))
}

/// Quantile of an already-sorted slice (ascending). Panics on empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5 quantile); `None` on empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean; `None` with fewer than two samples.
pub fn ci95_half_width(xs: &[f64]) -> Option<f64> {
    let sd = std_dev(xs)?;
    Some(1.96 * sd / (xs.len() as f64).sqrt())
}

/// Evaluates the empirical CDF at `points.len()` evenly spaced error levels
/// from 0 to `max`, returning `(level, fraction ≤ level)` pairs. Used to
/// reproduce per-node error CDF figures.
pub fn empirical_cdf(xs: &[f64], max: f64, points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two CDF points");
    let sorted = sorted_total(xs);
    let n = sorted.len();
    (0..points)
        .map(|i| {
            let level = max * i as f64 / (points - 1) as f64;
            let count = sorted.partition_point(|&x| x <= level);
            let frac = if n == 0 { 0.0 } else { count as f64 / n as f64 };
            (level, frac)
        })
        .collect()
}

/// One-pass (Welford) accumulator for mean and variance; usable online and
/// mergeable across parallel shards.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance; `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Fixed-bin histogram over `[lo, hi)` with out-of-range clamping; used for
/// belief visualization and distribution sanity checks.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram domain");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds an observation; values outside `[lo, hi)` clamp to the end bins.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized bin frequencies (empty histogram yields all zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Population variance is 4; sample variance = 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_none());
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rms_known() {
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
        assert!(rms(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        // Out-of-range q clamps.
        assert_eq!(quantile(&xs, 2.0), Some(4.0));
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let small = [1.0, 2.0, 3.0, 4.0];
        let big: Vec<f64> = small.iter().cycle().take(400).copied().collect();
        assert!(ci95_half_width(&big).unwrap() < ci95_half_width(&small).unwrap());
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let xs = [0.1, 0.4, 0.4, 0.9, 2.0];
        let cdf = empirical_cdf(&xs, 2.0, 11);
        assert_eq!(cdf.len(), 11);
        assert_eq!(cdf[0].0, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        // Fraction at level 0.4 counts the two 0.4 values and 0.1.
        let at_04 = cdf.iter().find(|(l, _)| (*l - 0.4).abs() < 1e-9).unwrap();
        assert!((at_04.1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, -2.0, 3.0, 0.5, 10.0, -7.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((w.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(2.0);
        let b = Welford::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.mean(), Some(2.0));
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), Some(2.0));
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 3); // 0.5, 1.5 and clamped -3.0
        assert_eq!(h.counts()[4], 2); // 9.9 and clamped 42.0
        let freq = h.frequencies();
        assert!((freq.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_frequencies() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }
}
