//! Deployment-field shapes.
//!
//! Cooperative-localization papers evaluate on irregular fields (C-shaped,
//! O-shaped/annular, L-shaped regions) because hop-count baselines such as
//! DV-Hop break when shortest network paths detour around holes. [`Shape`]
//! models those fields with containment tests and uniform rejection sampling.

use crate::aabb::Aabb;
use crate::rng::Xoshiro256pp;
use crate::vec2::Vec2;

/// A deployment region in the plane.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Shape {
    /// Solid axis-aligned rectangle.
    Rect(Aabb),
    /// Solid disk.
    Disk {
        /// Center of the disk.
        center: Vec2,
        /// Radius (> 0).
        radius: f64,
    },
    /// Annulus (O shape): points whose distance to `center` lies within
    /// `[inner, outer]`.
    Annulus {
        /// Center of both circles.
        center: Vec2,
        /// Inner (hole) radius.
        inner: f64,
        /// Outer radius (> inner).
        outer: f64,
    },
    /// C shape: the annulus minus an angular wedge of `gap_angle` radians
    /// centered on `gap_direction` (angle from +x axis). This is the classic
    /// "C-shaped network" of the localization literature.
    CShape {
        /// Center of the C.
        center: Vec2,
        /// Inner radius of the band.
        inner: f64,
        /// Outer radius of the band.
        outer: f64,
        /// Direction of the opening, radians from +x.
        gap_direction: f64,
        /// Angular width of the opening, radians in `(0, 2π)`.
        gap_angle: f64,
    },
    /// L shape: the union of two overlapping rectangles.
    LShape {
        /// Vertical arm.
        vertical: Aabb,
        /// Horizontal arm.
        horizontal: Aabb,
    },
    /// Simple polygon given by its vertices in order (closed implicitly).
    /// Containment uses the even-odd rule, so self-intersections behave like
    /// even-odd fill.
    Polygon(Vec<Vec2>),
}

impl Shape {
    /// Standard unit-field C shape used by the experiments: a band covering
    /// the middle of a `side × side` field with a 90° opening facing +x.
    pub fn standard_c(side: f64) -> Shape {
        let c = Vec2::splat(side / 2.0);
        Shape::CShape {
            center: c,
            inner: side * 0.18,
            outer: side * 0.48,
            gap_direction: 0.0,
            gap_angle: std::f64::consts::FRAC_PI_2,
        }
    }

    /// Standard O shape (annulus) filling a `side × side` field.
    pub fn standard_o(side: f64) -> Shape {
        Shape::Annulus {
            center: Vec2::splat(side / 2.0),
            inner: side * 0.18,
            outer: side * 0.48,
        }
    }

    /// Tight axis-aligned bounding box of the shape.
    pub fn bounding_box(&self) -> Aabb {
        match self {
            Shape::Rect(b) => *b,
            Shape::Disk { center, radius } => Aabb::new(
                *center - Vec2::splat(*radius),
                *center + Vec2::splat(*radius),
            ),
            Shape::Annulus { center, outer, .. } | Shape::CShape { center, outer, .. } => {
                Aabb::new(*center - Vec2::splat(*outer), *center + Vec2::splat(*outer))
            }
            Shape::LShape {
                vertical,
                horizontal,
            } => vertical.union(horizontal),
            // An empty polygon has no extent; collapse to the origin rather
            // than panicking deep inside a deployment pipeline.
            Shape::Polygon(vs) => {
                Aabb::from_points(vs).unwrap_or_else(|| Aabb::new(Vec2::ZERO, Vec2::ZERO))
            }
        }
    }

    /// `true` iff `p` is inside the region (closed boundaries).
    pub fn contains(&self, p: Vec2) -> bool {
        match self {
            Shape::Rect(b) => b.contains(p),
            Shape::Disk { center, radius } => p.dist_sq(*center) <= radius * radius,
            Shape::Annulus {
                center,
                inner,
                outer,
            } => {
                let d2 = p.dist_sq(*center);
                d2 >= inner * inner && d2 <= outer * outer
            }
            Shape::CShape {
                center,
                inner,
                outer,
                gap_direction,
                gap_angle,
            } => {
                let d2 = p.dist_sq(*center);
                if d2 < inner * inner || d2 > outer * outer {
                    return false;
                }
                // Outside the gap wedge?
                let theta = (p - *center).angle();
                let mut delta = (theta - gap_direction).rem_euclid(std::f64::consts::TAU);
                if delta > std::f64::consts::PI {
                    delta -= std::f64::consts::TAU;
                }
                delta.abs() > gap_angle / 2.0
            }
            Shape::LShape {
                vertical,
                horizontal,
            } => vertical.contains(p) || horizontal.contains(p),
            Shape::Polygon(vs) => polygon_contains(vs, p),
        }
    }

    /// Exact area where closed-form, otherwise a deterministic Monte-Carlo
    /// estimate (polygons use the shoelace formula).
    pub fn area(&self) -> f64 {
        match self {
            Shape::Rect(b) => b.area(),
            Shape::Disk { radius, .. } => std::f64::consts::PI * radius * radius,
            Shape::Annulus { inner, outer, .. } => {
                std::f64::consts::PI * (outer * outer - inner * inner)
            }
            Shape::CShape {
                inner,
                outer,
                gap_angle,
                ..
            } => {
                let band = std::f64::consts::PI * (outer * outer - inner * inner);
                band * (1.0 - gap_angle / std::f64::consts::TAU)
            }
            Shape::LShape {
                vertical,
                horizontal,
            } => {
                let overlap = rect_overlap_area(vertical, horizontal);
                vertical.area() + horizontal.area() - overlap
            }
            Shape::Polygon(vs) => shoelace_area(vs),
        }
    }

    /// Uniform sample inside the region by rejection from the bounding box.
    ///
    /// If 10 000 consecutive rejections occur (a degenerate shape whose area
    /// is ≲ 0.01% of its bounding box) the draw falls back to an
    /// unconstrained bounding-box sample instead of aborting the caller.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        let bb = self.bounding_box();
        for _ in 0..10_000 {
            let p = rng.point_in(bb.min, bb.max);
            if self.contains(p) {
                return p;
            }
        }
        rng.point_in(bb.min, bb.max)
    }

    /// Draws `n` uniform samples.
    pub fn sample_n(&self, rng: &mut Xoshiro256pp, n: usize) -> Vec<Vec2> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

fn rect_overlap_area(a: &Aabb, b: &Aabb) -> f64 {
    let w = (a.max.x.min(b.max.x) - a.min.x.max(b.min.x)).max(0.0);
    let h = (a.max.y.min(b.max.y) - a.min.y.max(b.min.y)).max(0.0);
    w * h
}

/// Even-odd rule point-in-polygon test.
fn polygon_contains(vs: &[Vec2], p: Vec2) -> bool {
    if vs.len() < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = vs.len() - 1;
    for i in 0..vs.len() {
        let (a, b) = (vs[i], vs[j]);
        if (a.y > p.y) != (b.y > p.y) {
            let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Shoelace (signed-area magnitude) of a simple polygon.
fn shoelace_area(vs: &[Vec2]) -> f64 {
    if vs.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..vs.len() {
        let a = vs[i];
        let b = vs[(i + 1) % vs.len()];
        acc += a.cross(b);
    }
    acc.abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_area() {
        let s = Shape::Rect(Aabb::from_size(10.0, 5.0));
        assert!(s.contains(Vec2::new(3.0, 2.0)));
        assert!(!s.contains(Vec2::new(11.0, 2.0)));
        assert_eq!(s.area(), 50.0);
    }

    #[test]
    fn disk_contains_and_area() {
        let s = Shape::Disk {
            center: Vec2::new(1.0, 1.0),
            radius: 2.0,
        };
        assert!(s.contains(Vec2::new(2.0, 1.0)));
        assert!(s.contains(Vec2::new(3.0, 1.0))); // boundary
        assert!(!s.contains(Vec2::new(3.1, 1.0)));
        assert!((s.area() - std::f64::consts::PI * 4.0).abs() < 1e-12);
    }

    #[test]
    fn annulus_excludes_hole() {
        let s = Shape::Annulus {
            center: Vec2::ZERO,
            inner: 1.0,
            outer: 2.0,
        };
        assert!(!s.contains(Vec2::ZERO));
        assert!(!s.contains(Vec2::new(0.5, 0.0)));
        assert!(s.contains(Vec2::new(1.5, 0.0)));
        assert!(!s.contains(Vec2::new(2.5, 0.0)));
        assert!((s.area() - std::f64::consts::PI * 3.0).abs() < 1e-12);
    }

    #[test]
    fn cshape_has_a_gap() {
        let s = Shape::CShape {
            center: Vec2::ZERO,
            inner: 1.0,
            outer: 2.0,
            gap_direction: 0.0,
            gap_angle: std::f64::consts::FRAC_PI_2,
        };
        // In the band but inside the gap wedge (facing +x): excluded.
        assert!(!s.contains(Vec2::new(1.5, 0.0)));
        // In the band, opposite the gap: included.
        assert!(s.contains(Vec2::new(-1.5, 0.0)));
        // Band on +y: included (gap is only ±45° around +x).
        assert!(s.contains(Vec2::new(0.0, 1.5)));
    }

    #[test]
    fn cshape_gap_wraps_across_pi() {
        let s = Shape::CShape {
            center: Vec2::ZERO,
            inner: 1.0,
            outer: 2.0,
            gap_direction: std::f64::consts::PI, // opening faces -x
            gap_angle: std::f64::consts::FRAC_PI_2,
        };
        assert!(!s.contains(Vec2::new(-1.5, 0.0)));
        assert!(s.contains(Vec2::new(1.5, 0.0)));
    }

    #[test]
    fn lshape_union_semantics() {
        let s = Shape::LShape {
            vertical: Aabb::from_size(1.0, 3.0),
            horizontal: Aabb::from_size(3.0, 1.0),
        };
        assert!(s.contains(Vec2::new(0.5, 2.5)));
        assert!(s.contains(Vec2::new(2.5, 0.5)));
        assert!(!s.contains(Vec2::new(2.5, 2.5)));
        // Overlap (1×1) counted once: 3 + 3 - 1.
        assert!((s.area() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_containment_square() {
        let square = Shape::Polygon(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(square.contains(Vec2::new(1.0, 1.0)));
        assert!(!square.contains(Vec2::new(3.0, 1.0)));
        assert!((square.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_concave() {
        // A chevron: concave notch at the top.
        let chevron = Shape::Polygon(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(4.0, 3.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(0.0, 3.0),
        ]);
        assert!(chevron.contains(Vec2::new(2.0, 0.5)));
        assert!(!chevron.contains(Vec2::new(2.0, 2.5))); // inside the notch
    }

    #[test]
    fn degenerate_polygon_is_empty() {
        let line = Shape::Polygon(vec![Vec2::ZERO, Vec2::new(1.0, 1.0)]);
        assert!(!line.contains(Vec2::new(0.5, 0.5)));
        assert_eq!(line.area(), 0.0);
    }

    #[test]
    fn samples_are_inside_every_shape() {
        let shapes = vec![
            Shape::Rect(Aabb::from_size(10.0, 4.0)),
            Shape::Disk {
                center: Vec2::new(5.0, 5.0),
                radius: 3.0,
            },
            Shape::standard_o(100.0),
            Shape::standard_c(100.0),
            Shape::LShape {
                vertical: Aabb::from_size(2.0, 8.0),
                horizontal: Aabb::from_size(8.0, 2.0),
            },
        ];
        let mut rng = Xoshiro256pp::seed_from(99);
        for s in &shapes {
            for p in s.sample_n(&mut rng, 500) {
                assert!(s.contains(p), "sample {p} escaped {s:?}");
            }
        }
    }

    #[test]
    fn sampling_density_is_uniform_for_disk() {
        // Left and right halves of a disk should receive equal mass.
        let s = Shape::Disk {
            center: Vec2::ZERO,
            radius: 1.0,
        };
        let mut rng = Xoshiro256pp::seed_from(5);
        let n = 40_000;
        let left = s
            .sample_n(&mut rng, n)
            .into_iter()
            .filter(|p| p.x < 0.0)
            .count();
        let frac = left as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left fraction {frac}");
    }

    #[test]
    fn bounding_boxes_contain_all_samples() {
        let s = Shape::standard_c(50.0);
        let bb = s.bounding_box();
        let mut rng = Xoshiro256pp::seed_from(123);
        for p in s.sample_n(&mut rng, 1_000) {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn cshape_area_accounts_for_gap() {
        let full = Shape::standard_o(100.0).area();
        let c = Shape::standard_c(100.0).area();
        // Standard C removes a quarter-turn wedge: area = 3/4 of the O.
        assert!((c - full * 0.75).abs() < 1e-9);
    }
}
