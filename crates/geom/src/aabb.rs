//! Axis-aligned bounding boxes.
//!
//! Used for deployment-field extents, grid-belief domains, and spatial-hash
//! bounds. An [`Aabb`] is closed: both edges are inside.

use crate::vec2::Vec2;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl Aabb {
    /// Creates a box from two corners. Panics if `min` exceeds `max` in any
    /// coordinate — construct with [`Aabb::from_points`] for unordered input.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Aabb::new requires min <= max, got {min} / {max}"
        );
        Aabb { min, max }
    }

    /// The box `[0, w] × [0, h]`.
    pub fn from_size(w: f64, h: f64) -> Self {
        Aabb::new(Vec2::ZERO, Vec2::new(w, h))
    }

    /// Smallest box containing every point; `None` for an empty slice.
    pub fn from_points(points: &[Vec2]) -> Option<Self> {
        let first = *points.first()?;
        let (min, max) = points
            .iter()
            .fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Length of the diagonal — a natural scale for "anywhere in the field"
    /// error magnitudes.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.dist(self.max)
    }

    /// `true` iff `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Closest point of the box to `p` (equals `p` when inside).
    #[inline]
    pub fn clamp_point(&self, p: Vec2) -> Vec2 {
        p.clamp(self.min, self.max)
    }

    /// `true` iff the two boxes overlap (closed-interval semantics).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The smallest box containing both.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box by `margin` on every side (shrinks for negative margins;
    /// panics if the result would be inverted).
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb::new(
            self.min - Vec2::splat(margin),
            self.max + Vec2::splat(margin),
        )
    }

    /// Maps a unit-square coordinate `(u, v) ∈ [0,1]²` into the box. With
    /// uniform `(u, v)` this yields uniform samples over the box.
    #[inline]
    pub fn lerp_point(&self, u: f64, v: f64) -> Vec2 {
        Vec2::new(
            self.min.x + u * self.width(),
            self.min.y + v * self.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_extent() {
        let b = Aabb::from_size(10.0, 5.0);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 50.0);
        assert_eq!(b.center(), Vec2::new(5.0, 2.5));
        assert!((b.diagonal() - (125.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_box_panics() {
        let _ = Aabb::new(Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Vec2::new(1.0, 4.0),
            Vec2::new(-2.0, 0.5),
            Vec2::new(3.0, 2.0),
        ];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.min, Vec2::new(-2.0, 0.5));
        assert_eq!(b.max, Vec2::new(3.0, 4.0));
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn containment_is_closed() {
        let b = Aabb::from_size(1.0, 1.0);
        assert!(b.contains(Vec2::ZERO));
        assert!(b.contains(Vec2::new(1.0, 1.0)));
        assert!(!b.contains(Vec2::new(1.0 + 1e-9, 0.5)));
    }

    #[test]
    fn clamping() {
        let b = Aabb::from_size(2.0, 2.0);
        assert_eq!(b.clamp_point(Vec2::new(5.0, -1.0)), Vec2::new(2.0, 0.0));
        assert_eq!(b.clamp_point(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn intersection_and_union() {
        let a = Aabb::from_size(2.0, 2.0);
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        let c = Aabb::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Vec2::ZERO);
        assert_eq!(u.max, Vec2::new(6.0, 6.0));
    }

    #[test]
    fn edge_touching_boxes_intersect() {
        let a = Aabb::from_size(1.0, 1.0);
        let b = Aabb::new(Vec2::new(1.0, 0.0), Vec2::new(2.0, 1.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn inflation() {
        let b = Aabb::from_size(2.0, 2.0).inflated(1.0);
        assert_eq!(b.min, Vec2::new(-1.0, -1.0));
        assert_eq!(b.max, Vec2::new(3.0, 3.0));
    }

    #[test]
    fn lerp_point_corners() {
        let b = Aabb::new(Vec2::new(1.0, 2.0), Vec2::new(3.0, 6.0));
        assert_eq!(b.lerp_point(0.0, 0.0), b.min);
        assert_eq!(b.lerp_point(1.0, 1.0), b.max);
        assert_eq!(b.lerp_point(0.5, 0.5), b.center());
    }
}
