//! Property-based tests for the geometry/numerics substrate, on the
//! in-tree [`check`] harness (the workspace builds offline, without
//! `proptest`).

use wsnloc_geom::check;
use wsnloc_geom::matrix::Matrix;
use wsnloc_geom::rng::{systematic_resample, Xoshiro256pp};
use wsnloc_geom::stats;
use wsnloc_geom::{Aabb, Shape, Vec2};

const CASES: u64 = 24;

fn finite_f64(rng: &mut Xoshiro256pp) -> f64 {
    rng.range(-1e6, 1e6)
}

fn vec2(rng: &mut Xoshiro256pp) -> Vec2 {
    Vec2::new(finite_f64(rng), finite_f64(rng))
}

fn vec_of_f64(rng: &mut Xoshiro256pp, lo: usize, hi: usize, min: f64, max: f64) -> Vec<f64> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| rng.range(min, max)).collect()
}

#[test]
fn vec_add_commutes() {
    check::cases(CASES, |_, rng| {
        let (a, b) = (vec2(rng), vec2(rng));
        assert_eq!(a + b, b + a);
    });
}

#[test]
fn vec_add_associates() {
    check::cases(CASES, |_, rng| {
        let (a, b, c) = (vec2(rng), vec2(rng), vec2(rng));
        let lhs = (a + b) + c;
        let rhs = a + (b + c);
        assert!(lhs.dist(rhs) < 1e-6 * (1.0 + lhs.norm()));
    });
}

#[test]
fn scalar_distributes() {
    check::cases(CASES, |_, rng| {
        let (a, b) = (vec2(rng), vec2(rng));
        let k = rng.range(-1e3, 1e3);
        let lhs = (a + b) * k;
        let rhs = a * k + b * k;
        assert!(lhs.dist(rhs) < 1e-6 * (1.0 + lhs.norm()));
    });
}

#[test]
fn triangle_inequality() {
    check::cases(CASES, |_, rng| {
        let (a, b, c) = (vec2(rng), vec2(rng), vec2(rng));
        assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9 * (1.0 + a.norm() + c.norm()));
    });
}

#[test]
fn rotation_preserves_norm() {
    check::cases(CASES, |_, rng| {
        let v = vec2(rng);
        let theta = rng.range(-10.0, 10.0);
        let r = v.rotated(theta);
        assert!((r.norm() - v.norm()).abs() < 1e-6 * (1.0 + v.norm()));
    });
}

#[test]
fn normalized_has_unit_norm() {
    check::cases(CASES, |_, rng| {
        if let Some(u) = vec2(rng).try_normalize() {
            assert!((u.norm() - 1.0).abs() < 1e-9);
        }
    });
}

#[test]
fn dot_cauchy_schwarz() {
    check::cases(CASES, |_, rng| {
        let (a, b) = (vec2(rng), vec2(rng));
        assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-6);
    });
}

#[test]
fn aabb_from_points_contains_all() {
    check::cases(CASES, |_, rng| {
        let n = 1 + rng.index(49);
        let pts: Vec<Vec2> = (0..n).map(|_| vec2(rng)).collect();
        let bb = Aabb::from_points(&pts).expect("non-empty point set has a bounding box");
        for p in pts {
            assert!(bb.contains(p));
        }
    });
}

#[test]
fn aabb_clamp_is_inside() {
    check::cases(CASES, |_, rng| {
        let bb = Aabb::from_size(100.0, 40.0);
        assert!(bb.contains(bb.clamp_point(vec2(rng))));
    });
}

#[test]
fn aabb_union_contains_both() {
    check::cases(CASES, |_, rng| {
        let (a, b, c, d) = (vec2(rng), vec2(rng), vec2(rng), vec2(rng));
        let b1 = Aabb::from_points(&[a, b]).expect("two points bound a box");
        let b2 = Aabb::from_points(&[c, d]).expect("two points bound a box");
        let u = b1.union(&b2);
        assert!(u.contains(a) && u.contains(b) && u.contains(c) && u.contains(d));
    });
}

#[test]
fn rng_f64_stays_in_unit_interval() {
    check::cases(CASES, |_, rng| {
        let mut inner = Xoshiro256pp::seed_from(rng.next_u64());
        for _ in 0..100 {
            let x = inner.f64();
            assert!((0.0..1.0).contains(&x));
        }
    });
}

#[test]
fn rng_index_in_range() {
    check::cases(CASES, |_, rng| {
        let n = 1 + rng.index(999);
        let mut inner = Xoshiro256pp::seed_from(rng.next_u64());
        for _ in 0..50 {
            assert!(inner.index(n) < n);
        }
    });
}

#[test]
fn shuffle_preserves_multiset() {
    check::cases(CASES, |_, rng| {
        let n = rng.index(40);
        let mut xs: Vec<u32> = (0..n).map(|_| rng.index(100) as u32).collect();
        let mut expected = xs.clone();
        rng.shuffle(&mut xs);
        expected.sort_unstable();
        xs.sort_unstable();
        assert_eq!(xs, expected);
    });
}

#[test]
fn resample_indices_valid() {
    check::cases(CASES, |_, rng| {
        let weights = vec_of_f64(rng, 1, 30, 0.0, 10.0);
        let count = rng.index(100);
        if let Some(idx) = systematic_resample(rng, &weights, count) {
            assert_eq!(idx.len(), count);
            for i in idx {
                assert!(i < weights.len());
                assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
            }
        } else {
            assert!(weights.iter().sum::<f64>() <= 0.0);
        }
    });
}

#[test]
fn quantile_between_min_and_max() {
    check::cases(CASES, |_, rng| {
        let xs = vec_of_f64(rng, 1, 100, -1e3, 1e3);
        let q = rng.f64();
        let v = stats::quantile(&xs, q).expect("non-empty sample has quantiles");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    });
}

#[test]
fn quantiles_are_monotone_in_q() {
    check::cases(CASES, |_, rng| {
        let xs = vec_of_f64(rng, 2, 60, -1e3, 1e3);
        let q25 = stats::quantile(&xs, 0.25).expect("non-empty");
        let q50 = stats::quantile(&xs, 0.5).expect("non-empty");
        let q90 = stats::quantile(&xs, 0.9).expect("non-empty");
        assert!(q25 <= q50 + 1e-12 && q50 <= q90 + 1e-12);
    });
}

#[test]
fn welford_merge_is_order_independent() {
    check::cases(CASES, |_, rng| {
        let xs = vec_of_f64(rng, 2, 60, -1e3, 1e3);
        let split = (1 + rng.index(58)).min(xs.len() - 1);
        let mut whole = stats::Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let (l, r) = xs.split_at(split);
        let mut wl = stats::Welford::new();
        let mut wr = stats::Welford::new();
        l.iter().for_each(|&x| wl.push(x));
        r.iter().for_each(|&x| wr.push(x));
        wl.merge(&wr);
        let merged = wl.mean().expect("merged accumulator is non-empty");
        let direct = whole.mean().expect("whole accumulator is non-empty");
        assert!((merged - direct).abs() < 1e-8);
    });
}

#[test]
fn shape_samples_are_contained() {
    check::cases(CASES, |_, rng| {
        let side = rng.range(10.0, 500.0);
        for shape in [
            Shape::standard_c(side),
            Shape::standard_o(side),
            Shape::Rect(Aabb::from_size(side, side)),
        ] {
            for p in shape.sample_n(rng, 20) {
                assert!(shape.contains(p));
            }
        }
    });
}

#[test]
fn spd_solve_recovers_solution() {
    check::cases(CASES, |_, rng| {
        // Build an SPD matrix A = Mᵀ M + I and verify A⁻¹(A x) == x.
        let m = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.2, 2.0, 0.3], &[0.0, -0.4, 1.5]]);
        let a = &(&m.transpose() * &m) + &Matrix::identity(3);
        let x = vec![finite_f64(rng), finite_f64(rng), finite_f64(rng)];
        let b = a.mul_vec(&x);
        let sol = a.solve_spd(&b).expect("SPD by construction");
        let scale = 1.0 + x.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (s, v) in sol.iter().zip(&x) {
            assert!((s - v).abs() < 1e-6 * scale);
        }
    });
}

#[test]
fn lu_solve_matches_spd_solve() {
    check::cases(CASES, |_, rng| {
        let a0 = rng.range(1.0, 10.0);
        let a1 = rng.range(-3.0, 3.0);
        let a2 = rng.range(1.0, 10.0);
        let a = Matrix::from_rows(&[&[a0 + 3.0, a1], &[a1, a2 + 3.0]]);
        let b = [1.0, -2.0];
        let x_spd = a.solve_spd(&b);
        let x_lu = a.solve_lu(&b);
        if let (Some(s), Some(l)) = (x_spd, x_lu) {
            assert!((s[0] - l[0]).abs() < 1e-8);
            assert!((s[1] - l[1]).abs() < 1e-8);
        }
    });
}

#[test]
fn eigen_sum_equals_trace() {
    check::cases(CASES, |_, rng| {
        // Symmetric matrix from arbitrary entries.
        let d: Vec<f64> = (0..6).map(|_| rng.range(-5.0, 5.0)).collect();
        let a = Matrix::from_rows(&[
            &[d[0], d[1], d[2]],
            &[d[1], d[3], d[4]],
            &[d[2], d[4], d[5]],
        ]);
        let (vals, _) = a.symmetric_eigen();
        let sum: f64 = vals.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8 * (1.0 + a.frobenius_norm()));
    });
}
