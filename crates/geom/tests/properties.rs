//! Property-based tests for the geometry/numerics substrate.

use proptest::prelude::*;
use wsnloc_geom::matrix::Matrix;
use wsnloc_geom::rng::{systematic_resample, Xoshiro256pp};
use wsnloc_geom::stats;
use wsnloc_geom::{Aabb, Shape, Vec2};

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite_f64(), finite_f64()).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn vec_add_commutes(a in vec2(), b in vec2()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn vec_add_associates(a in vec2(), b in vec2(), c in vec2()) {
        let lhs = (a + b) + c;
        let rhs = a + (b + c);
        prop_assert!(lhs.dist(rhs) < 1e-6 * (1.0 + lhs.norm()));
    }

    #[test]
    fn scalar_distributes(a in vec2(), b in vec2(), k in -1e3..1e3f64) {
        let lhs = (a + b) * k;
        let rhs = a * k + b * k;
        prop_assert!(lhs.dist(rhs) < 1e-6 * (1.0 + lhs.norm()));
    }

    #[test]
    fn triangle_inequality(a in vec2(), b in vec2(), c in vec2()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9 * (1.0 + a.norm() + c.norm()));
    }

    #[test]
    fn rotation_preserves_norm(v in vec2(), theta in -10.0..10.0f64) {
        let r = v.rotated(theta);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6 * (1.0 + v.norm()));
    }

    #[test]
    fn normalized_has_unit_norm(v in vec2()) {
        if let Some(u) = v.try_normalize() {
            prop_assert!((u.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(a in vec2(), b in vec2()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-6);
    }

    #[test]
    fn aabb_from_points_contains_all(pts in prop::collection::vec(vec2(), 1..50)) {
        let bb = Aabb::from_points(&pts).unwrap();
        for p in pts {
            prop_assert!(bb.contains(p));
        }
    }

    #[test]
    fn aabb_clamp_is_inside(p in vec2()) {
        let bb = Aabb::from_size(100.0, 40.0);
        prop_assert!(bb.contains(bb.clamp_point(p)));
    }

    #[test]
    fn aabb_union_contains_both(a in vec2(), b in vec2(), c in vec2(), d in vec2()) {
        let b1 = Aabb::from_points(&[a, b]).unwrap();
        let b2 = Aabb::from_points(&[c, d]).unwrap();
        let u = b1.union(&b2);
        prop_assert!(u.contains(a) && u.contains(b) && u.contains(c) && u.contains(d));
    }

    #[test]
    fn rng_f64_stays_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        for _ in 0..100 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_index_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.index(n) < n);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut xs in prop::collection::vec(0u32..100, 0..40)) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut expected = xs.clone();
        rng.shuffle(&mut xs);
        expected.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(xs, expected);
    }

    #[test]
    fn resample_indices_valid(seed in any::<u64>(), weights in prop::collection::vec(0.0..10.0f64, 1..30), count in 0usize..100) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        if let Some(idx) = systematic_resample(&mut rng, &weights, count) {
            prop_assert_eq!(idx.len(), count);
            for i in idx {
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
            }
        } else {
            prop_assert!(weights.iter().sum::<f64>() <= 0.0);
        }
    }

    #[test]
    fn quantile_between_min_and_max(xs in prop::collection::vec(-1e3..1e3f64, 1..100), q in 0.0..1.0f64) {
        let v = stats::quantile(&xs, q).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_in_q(xs in prop::collection::vec(-1e3..1e3f64, 2..60)) {
        let q25 = stats::quantile(&xs, 0.25).unwrap();
        let q50 = stats::quantile(&xs, 0.5).unwrap();
        let q90 = stats::quantile(&xs, 0.9).unwrap();
        prop_assert!(q25 <= q50 + 1e-12 && q50 <= q90 + 1e-12);
    }

    #[test]
    fn welford_merge_is_order_independent(xs in prop::collection::vec(-1e3..1e3f64, 2..60), split in 1usize..59) {
        let split = split.min(xs.len() - 1);
        let mut whole = stats::Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let (l, r) = xs.split_at(split);
        let mut wl = stats::Welford::new();
        let mut wr = stats::Welford::new();
        l.iter().for_each(|&x| wl.push(x));
        r.iter().for_each(|&x| wr.push(x));
        wl.merge(&wr);
        prop_assert!((wl.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-8);
    }

    #[test]
    fn shape_samples_are_contained(seed in any::<u64>(), side in 10.0..500.0f64) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        for shape in [Shape::standard_c(side), Shape::standard_o(side), Shape::Rect(Aabb::from_size(side, side))] {
            for p in shape.sample_n(&mut rng, 20) {
                prop_assert!(shape.contains(p));
            }
        }
    }

    #[test]
    fn spd_solve_recovers_solution(x0 in finite_f64(), x1 in finite_f64(), x2 in finite_f64()) {
        // Build an SPD matrix A = Mᵀ M + I and verify A⁻¹(A x) == x.
        let m = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.2, 2.0, 0.3], &[0.0, -0.4, 1.5]]);
        let a = &(&m.transpose() * &m) + &Matrix::identity(3);
        let x = vec![x0, x1, x2];
        let b = a.mul_vec(&x);
        let sol = a.solve_spd(&b).unwrap();
        let scale = 1.0 + x.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (s, v) in sol.iter().zip(&x) {
            prop_assert!((s - v).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn lu_solve_matches_spd_solve(a0 in 1.0..10.0f64, a1 in -3.0..3.0f64, a2 in 1.0..10.0f64) {
        let a = Matrix::from_rows(&[&[a0 + 3.0, a1], &[a1, a2 + 3.0]]);
        let b = [1.0, -2.0];
        let x_spd = a.solve_spd(&b);
        let x_lu = a.solve_lu(&b);
        if let (Some(s), Some(l)) = (x_spd, x_lu) {
            prop_assert!((s[0] - l[0]).abs() < 1e-8);
            prop_assert!((s[1] - l[1]).abs() < 1e-8);
        }
    }

    #[test]
    fn eigen_sum_equals_trace(d in prop::collection::vec(-5.0..5.0f64, 6)) {
        // Symmetric matrix from arbitrary entries.
        let a = Matrix::from_rows(&[
            &[d[0], d[1], d[2]],
            &[d[1], d[3], d[4]],
            &[d[2], d[4], d[5]],
        ]);
        let (vals, _) = a.symmetric_eigen();
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8 * (1.0 + a.frobenius_norm()));
    }
}
