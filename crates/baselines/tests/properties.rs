//! Property-based tests for the baseline localizers, on the in-tree
//! `wsnloc_geom::check` harness (the workspace builds offline, without
//! `proptest`).

use wsnloc::Localizer;
use wsnloc_baselines::procrustes::{procrustes_align, svd2x2};
use wsnloc_baselines::{Centroid, DvHop, MdsMap, MinMax, Multilateration, WeightedCentroid};
use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;
use wsnloc_net::network::NetworkBuilder;
use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

const CASES: u64 = 24;

fn vec2(rng: &mut Xoshiro256pp, limit: f64) -> Vec2 {
    Vec2::new(rng.range(-limit, limit), rng.range(-limit, limit))
}

#[test]
fn svd_reconstructs() {
    check::cases(CASES, |_, rng| {
        let m = [
            rng.range(-10.0, 10.0),
            rng.range(-10.0, 10.0),
            rng.range(-10.0, 10.0),
            rng.range(-10.0, 10.0),
        ];
        let (u, s, vt) = svd2x2(m);
        assert!(s[0] >= s[1] && s[1] >= -1e-9, "singular values {s:?}");
        // usv reconstruction.
        let us = [u[0] * s[0], u[1] * s[1], u[2] * s[0], u[3] * s[1]];
        let usv = [
            us[0] * vt[0] + us[1] * vt[2],
            us[0] * vt[1] + us[1] * vt[3],
            us[2] * vt[0] + us[3] * vt[2],
            us[2] * vt[1] + us[3] * vt[3],
        ];
        let scale = 1.0 + m.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for k in 0..4 {
            assert!((usv[k] - m[k]).abs() < 1e-7 * scale, "{m:?} → {usv:?}");
        }
    });
}

#[test]
fn procrustes_recovers_similarities() {
    check::cases(CASES, |_, rng| {
        let n = 3 + rng.index(9);
        let pts: Vec<Vec2> = (0..n).map(|_| vec2(rng, 100.0)).collect();
        let theta = rng.range(-3.0, 3.0);
        let scale = rng.range(0.2, 4.0);
        let t_xy = vec2(rng, 50.0);
        let reflect = rng.bernoulli(0.5);
        // Skip degenerate (collinear-ish / collapsed) source sets.
        let c = Vec2::centroid(&pts).expect("non-empty point set");
        let spread: f64 = pts.iter().map(|p| p.dist_sq(c)).sum();
        if spread <= 1.0 {
            return;
        }
        let dst: Vec<Vec2> = pts
            .iter()
            .map(|p| {
                let p = if reflect { Vec2::new(p.x, -p.y) } else { *p };
                p.rotated(theta) * scale + t_xy
            })
            .collect();
        let t = procrustes_align(&pts, &dst).expect("non-degenerate input aligns");
        for (&s, &d) in pts.iter().zip(&dst) {
            assert!(
                t.apply(s).dist(d) < 1e-6 * (1.0 + d.norm()),
                "{s} mapped to {} want {d}",
                t.apply(s)
            );
        }
        assert!((t.scale - scale).abs() < 1e-6 * scale);
    });
}

#[test]
fn multilateration_exact_with_clean_ranges() {
    check::cases(CASES, |_, rng| {
        let truth = vec2(rng, 80.0);
        // Four non-degenerate anchors.
        let anchors: Vec<Vec2> = vec![
            Vec2::new(-100.0 + rng.f64(), -100.0),
            Vec2::new(100.0, -100.0 + rng.f64()),
            Vec2::new(100.0 + rng.f64(), 100.0),
            Vec2::new(-100.0, 100.0 + rng.f64()),
        ];
        let refs: Vec<(Vec2, f64)> = anchors.iter().map(|&a| (a, truth.dist(a))).collect();
        let est = Multilateration::solve(&refs, true, 25).expect("clean ranges solve");
        assert!(est.dist(truth) < 1e-4, "estimate {est} vs {truth}");
    });
}

#[test]
fn all_algorithms_respect_result_contract() {
    check::cases(CASES, |_, rng| {
        let (net, truth) = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 50,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 160.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(rng.next_u64());
        let algos: Vec<Box<dyn Localizer>> = vec![
            Box::new(Centroid),
            Box::new(WeightedCentroid),
            Box::new(MinMax),
            Box::new(Multilateration::nls()),
            Box::new(Multilateration::iterative()),
            Box::new(DvHop::default()),
            Box::new(MdsMap),
        ];
        for algo in algos {
            let r = algo.localize(&net, 0);
            assert_eq!(r.estimates.len(), net.len());
            // Anchors always carry their exact position.
            for (id, pos) in net.anchors() {
                assert_eq!(r.estimates[id], Some(pos));
            }
            // Estimates are finite and not absurdly far outside the field.
            for u in net.unknowns() {
                if let Some(e) = r.estimates[u] {
                    assert!(e.is_finite(), "{}: {e}", algo.name());
                    assert!(
                        e.dist(truth.position(u)) < 5_000.0,
                        "{}: unreasonable estimate {e}",
                        algo.name()
                    );
                }
            }
            // Comm accounting is populated.
            assert!(r.comm.messages > 0, "{} reported no messages", algo.name());
        }
    });
}

#[test]
fn dvhop_coverage_matches_reachability() {
    check::cases(CASES, |_, rng| {
        let (net, _) = NetworkBuilder {
            deployment: Deployment::uniform_square(600.0),
            node_count: 60,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 170.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(rng.next_u64());
        let r = DvHop::default().localize(&net, 0);
        let anchor_ids: Vec<usize> = net.anchors().map(|(id, _)| id).collect();
        let hops = net.topology().hops_from_all(&anchor_ids);
        for u in net.unknowns() {
            let reachable = hops.iter().filter(|t| t[u].is_some()).count();
            if reachable >= 3 {
                // Three anchor references exist; DV-Hop should produce an
                // estimate (solver degeneracy is possible but rare —
                // tolerate it only when references are collinear-ish, which
                // we don't construct here).
                assert!(
                    r.estimates[u].is_some() || reachable < 3,
                    "node {u} unlocalized with {reachable} anchor paths"
                );
            } else if reachable == 0 {
                assert!(r.estimates[u].is_none());
            }
        }
    });
}
