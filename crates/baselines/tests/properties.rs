//! Property-based tests for the baseline localizers.

use proptest::prelude::*;
use wsnloc::Localizer;
use wsnloc_baselines::procrustes::{procrustes_align, svd2x2};
use wsnloc_baselines::{Centroid, DvHop, MdsMap, MinMax, Multilateration, WeightedCentroid};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;
use wsnloc_net::network::NetworkBuilder;
use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

fn vec2(limit: f64) -> impl Strategy<Value = Vec2> {
    (-limit..limit, -limit..limit).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn svd_reconstructs(a in -10.0..10.0f64, b in -10.0..10.0f64, c in -10.0..10.0f64, d in -10.0..10.0f64) {
        let m = [a, b, c, d];
        let (u, s, vt) = svd2x2(m);
        prop_assert!(s[0] >= s[1] && s[1] >= -1e-9, "singular values {s:?}");
        // usv reconstruction.
        let us = [u[0] * s[0], u[1] * s[1], u[2] * s[0], u[3] * s[1]];
        let usv = [
            us[0] * vt[0] + us[1] * vt[2],
            us[0] * vt[1] + us[1] * vt[3],
            us[2] * vt[0] + us[3] * vt[2],
            us[2] * vt[1] + us[3] * vt[3],
        ];
        let scale = 1.0 + m.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for k in 0..4 {
            prop_assert!((usv[k] - m[k]).abs() < 1e-7 * scale, "{m:?} → {usv:?}");
        }
    }

    #[test]
    fn procrustes_recovers_similarities(
        pts in prop::collection::vec(vec2(100.0), 3..12),
        theta in -3.0..3.0f64,
        scale in 0.2..4.0f64,
        tx in -50.0..50.0f64,
        ty in -50.0..50.0f64,
        reflect in any::<bool>(),
    ) {
        // Skip degenerate (collinear-ish / collapsed) source sets.
        let c = Vec2::centroid(&pts).unwrap();
        let spread: f64 = pts.iter().map(|p| p.dist_sq(c)).sum();
        prop_assume!(spread > 1.0);
        let dst: Vec<Vec2> = pts
            .iter()
            .map(|p| {
                let p = if reflect { Vec2::new(p.x, -p.y) } else { *p };
                p.rotated(theta) * scale + Vec2::new(tx, ty)
            })
            .collect();
        let t = procrustes_align(&pts, &dst).unwrap();
        for (&s, &d) in pts.iter().zip(&dst) {
            prop_assert!(t.apply(s).dist(d) < 1e-6 * (1.0 + d.norm()),
                "{s} mapped to {} want {d}", t.apply(s));
        }
        prop_assert!((t.scale - scale).abs() < 1e-6 * scale);
    }

    #[test]
    fn multilateration_exact_with_clean_ranges(truth in vec2(80.0), seed in any::<u64>()) {
        // Four non-degenerate anchors.
        let mut rng = Xoshiro256pp::seed_from(seed);
        let anchors: Vec<Vec2> = vec![
            Vec2::new(-100.0 + rng.f64(), -100.0),
            Vec2::new(100.0, -100.0 + rng.f64()),
            Vec2::new(100.0 + rng.f64(), 100.0),
            Vec2::new(-100.0, 100.0 + rng.f64()),
        ];
        let refs: Vec<(Vec2, f64)> = anchors.iter().map(|&a| (a, truth.dist(a))).collect();
        let est = Multilateration::solve(&refs, true, 25).unwrap();
        prop_assert!(est.dist(truth) < 1e-4, "estimate {est} vs {truth}");
    }

    #[test]
    fn all_algorithms_respect_result_contract(seed in any::<u64>()) {
        let (net, truth) = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 50,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 160.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(seed);
        let algos: Vec<Box<dyn Localizer>> = vec![
            Box::new(Centroid),
            Box::new(WeightedCentroid),
            Box::new(MinMax),
            Box::new(Multilateration::nls()),
            Box::new(Multilateration::iterative()),
            Box::new(DvHop::default()),
            Box::new(MdsMap),
        ];
        for algo in algos {
            let r = algo.localize(&net, 0);
            prop_assert_eq!(r.estimates.len(), net.len());
            // Anchors always carry their exact position.
            for (id, pos) in net.anchors() {
                prop_assert_eq!(r.estimates[id], Some(pos));
            }
            // Estimates are finite and not absurdly far outside the field.
            for u in net.unknowns() {
                if let Some(e) = r.estimates[u] {
                    prop_assert!(e.is_finite(), "{}: {e}", algo.name());
                    prop_assert!(
                        e.dist(truth.position(u)) < 5_000.0,
                        "{}: unreasonable estimate {e}",
                        algo.name()
                    );
                }
            }
            // Comm accounting is populated.
            prop_assert!(r.comm.messages > 0, "{} reported no messages", algo.name());
        }
    }

    #[test]
    fn dvhop_coverage_matches_reachability(seed in any::<u64>()) {
        let (net, _) = NetworkBuilder {
            deployment: Deployment::uniform_square(600.0),
            node_count: 60,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 170.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(seed);
        let r = DvHop::default().localize(&net, 0);
        let anchor_ids: Vec<usize> = net.anchors().map(|(id, _)| id).collect();
        let hops = net.topology().hops_from_all(&anchor_ids);
        for u in net.unknowns() {
            let reachable = hops.iter().filter(|t| t[u].is_some()).count();
            if reachable >= 3 {
                // Three anchor references exist; DV-Hop should produce an
                // estimate (solver degeneracy is possible but rare —
                // tolerate it only when references are collinear-ish, which
                // we don't construct here).
                prop_assert!(
                    r.estimates[u].is_some() || reachable < 3,
                    "node {u} unlocalized with {reachable} anchor paths"
                );
            } else if reachable == 0 {
                prop_assert!(r.estimates[u].is_none());
            }
        }
    }
}
