//! 2-D similarity Procrustes alignment.
//!
//! MDS-MAP produces a *relative* map — correct up to rotation, reflection,
//! translation, and (with hop-distance input) scale. Anchors pin the
//! absolute frame: [`procrustes_align`] finds the similarity transform
//! minimizing the squared error between the transformed relative anchor
//! coordinates and their true positions, then applies it to all points.
//!
//! The optimal rotation comes from the closed-form 2×2 SVD of the
//! cross-covariance matrix, implemented here directly ([`svd2x2`]).

use wsnloc_geom::Vec2;

/// A similarity transform `y = scale · R · x + t` with `R` a rotation or
/// roto-reflection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Similarity {
    /// Uniform scale factor.
    pub scale: f64,
    /// 2×2 orthogonal matrix, row-major `[r00, r01, r10, r11]`.
    pub rot: [f64; 4],
    /// Translation.
    pub translation: Vec2,
}

impl Similarity {
    /// The identity transform.
    pub fn identity() -> Self {
        Similarity {
            scale: 1.0,
            rot: [1.0, 0.0, 0.0, 1.0],
            translation: Vec2::ZERO,
        }
    }

    /// Applies the transform to one point.
    pub fn apply(&self, p: Vec2) -> Vec2 {
        let r = Vec2::new(
            self.rot[0] * p.x + self.rot[1] * p.y,
            self.rot[2] * p.x + self.rot[3] * p.y,
        );
        r * self.scale + self.translation
    }
}

/// Closed-form SVD of a 2×2 matrix `m` (row-major). Returns `(u, s, vt)`
/// with `m = u · diag(s) · vt`, `s[0] ≥ s[1] ≥ 0`, and `u`, `vt` orthogonal.
///
/// Computed from the eigendecomposition of `mᵀm`: the right singular
/// vectors are its eigenvectors, singular values the square roots of its
/// eigenvalues, and `u` columns are `m·vᵢ/σᵢ` (with an orthogonal-complement
/// fallback for vanishing singular values).
pub fn svd2x2(m: [f64; 4]) -> ([f64; 4], [f64; 2], [f64; 4]) {
    let (a, b, c, d) = (m[0], m[1], m[2], m[3]);
    // mᵀm = [[p, q], [q, r]].
    let p = a * a + c * c;
    let q = a * b + c * d;
    let r = b * b + d * d;
    let half_trace = (p + r) / 2.0;
    let disc = (((p - r) / 2.0).powi(2) + q * q).sqrt();
    let l1 = (half_trace + disc).max(0.0);
    let l2 = (half_trace - disc).max(0.0);
    let s1 = l1.sqrt();
    let s2 = l2.sqrt();

    // Eigenvector of mᵀm for λ₁: (q, λ₁ − p) or (λ₁ − r, q); pick the
    // numerically larger, fall back to the axis for diagonal mᵀm.
    let cand1 = Vec2::new(q, l1 - p);
    let cand2 = Vec2::new(l1 - r, q);
    let v1 = if cand1.norm_sq() >= cand2.norm_sq() {
        cand1
    } else {
        cand2
    }
    .try_normalize()
    .unwrap_or(if p >= r {
        Vec2::new(1.0, 0.0)
    } else {
        Vec2::new(0.0, 1.0)
    });
    let v2 = v1.perp();

    // Left singular vectors: u_i = m v_i / σ_i.
    let mv = |v: Vec2| Vec2::new(a * v.x + b * v.y, c * v.x + d * v.y);
    let u1 = if s1 > 1e-300 {
        mv(v1) / s1
    } else {
        Vec2::new(1.0, 0.0)
    };
    let u2 = if s2 > 1e-12 * s1.max(1.0) {
        mv(v2) / s2
    } else {
        u1.perp()
    };

    let u = [u1.x, u2.x, u1.y, u2.y];
    let vt = [v1.x, v1.y, v2.x, v2.y];
    (u, [s1, s2], vt)
}

/// Multiplies two row-major 2×2 matrices.
fn mul2(x: [f64; 4], y: [f64; 4]) -> [f64; 4] {
    [
        x[0] * y[0] + x[1] * y[2],
        x[0] * y[1] + x[1] * y[3],
        x[2] * y[0] + x[3] * y[2],
        x[2] * y[1] + x[3] * y[3],
    ]
}

/// Finds the similarity (with reflection allowed) mapping `src` onto `dst`
/// in the least-squares sense. Returns `None` with fewer than two pairs or
/// a degenerate (zero-spread) source set.
pub fn procrustes_align(src: &[Vec2], dst: &[Vec2]) -> Option<Similarity> {
    assert_eq!(src.len(), dst.len(), "point set size mismatch");
    if src.len() < 2 {
        return None;
    }
    let sc = Vec2::centroid(src)?;
    let dc = Vec2::centroid(dst)?;
    // Cross-covariance M = Σ (d_i - dc)(s_i - sc)ᵀ and source variance.
    let mut m = [0.0f64; 4];
    let mut src_var = 0.0;
    for (&s, &d) in src.iter().zip(dst) {
        let s = s - sc;
        let d = d - dc;
        m[0] += d.x * s.x;
        m[1] += d.x * s.y;
        m[2] += d.y * s.x;
        m[3] += d.y * s.y;
        src_var += s.norm_sq();
    }
    if src_var < 1e-12 {
        return None;
    }
    let (u, s, vt) = svd2x2(m);
    // Reflection allowed: R = U Vᵀ directly (full Procrustes would restrict
    // det(R) = +1; anchor maps may legitimately need the flip).
    let rot = mul2(u, vt);
    let scale = (s[0] + s[1]) / src_var;
    let rs = Vec2::new(rot[0] * sc.x + rot[1] * sc.y, rot[2] * sc.x + rot[3] * sc.y);
    let translation = dc - rs * scale;
    Some(Similarity {
        scale,
        rot,
        translation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(m: [f64; 4], v: Vec2) -> Vec2 {
        Vec2::new(m[0] * v.x + m[1] * v.y, m[2] * v.x + m[3] * v.y)
    }

    #[test]
    fn svd_reconstructs_random_matrices() {
        for m in [
            [1.0, 2.0, 3.0, 4.0],
            [0.0, 1.0, -1.0, 0.0],
            [2.0, 0.0, 0.0, 0.5],
            [-1.0, 3.0, 2.0, -2.0],
            [1e-3, 0.0, 0.0, 1e-3],
        ] {
            let (u, s, vt) = svd2x2(m);
            // Reconstruct.
            let usv = mul2(mul2(u, [s[0], 0.0, 0.0, s[1]]), vt);
            for k in 0..4 {
                assert!(
                    (usv[k] - m[k]).abs() < 1e-9,
                    "reconstruction failed for {m:?}: {usv:?}"
                );
            }
            // Orthogonality.
            let uut = mul2(u, [u[0], u[2], u[1], u[3]]);
            assert!((uut[0] - 1.0).abs() < 1e-9 && uut[1].abs() < 1e-9);
            // Singular value ordering.
            assert!(s[0] >= s[1] && s[1] >= -1e-12);
        }
    }

    #[test]
    fn aligns_pure_rotation() {
        let src: Vec<Vec2> = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
        ];
        let theta = 0.7;
        let dst: Vec<Vec2> = src.iter().map(|p| p.rotated(theta)).collect();
        let t = procrustes_align(&src, &dst).unwrap();
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(t.apply(s).dist(d) < 1e-9);
        }
        assert!((t.scale - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aligns_similarity_with_translation_and_scale() {
        let src: Vec<Vec2> = vec![
            Vec2::new(1.0, 2.0),
            Vec2::new(4.0, -1.0),
            Vec2::new(-2.0, 3.0),
            Vec2::new(0.5, 0.5),
        ];
        let theta = -1.2;
        let scale = 2.5;
        let trans = Vec2::new(10.0, -7.0);
        let dst: Vec<Vec2> = src
            .iter()
            .map(|p| p.rotated(theta) * scale + trans)
            .collect();
        let t = procrustes_align(&src, &dst).unwrap();
        assert!((t.scale - scale).abs() < 1e-9);
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(t.apply(s).dist(d) < 1e-8);
        }
    }

    #[test]
    fn aligns_reflection() {
        let src: Vec<Vec2> = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 3.0),
        ];
        // Mirror over the x axis.
        let dst: Vec<Vec2> = src.iter().map(|p| Vec2::new(p.x, -p.y)).collect();
        let t = procrustes_align(&src, &dst).unwrap();
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(
                t.apply(s).dist(d) < 1e-9,
                "{} -> {} want {}",
                s,
                t.apply(s),
                d
            );
        }
        // Determinant is -1 for a reflection.
        let det = t.rot[0] * t.rot[3] - t.rot[1] * t.rot[2];
        assert!((det + 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_under_noise() {
        let src: Vec<Vec2> = (0..10)
            .map(|i| Vec2::new((i % 5) as f64, (i / 5) as f64 * 2.0))
            .collect();
        let dst: Vec<Vec2> = src
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.rotated(0.3) * 1.5
                    + Vec2::new(5.0, 5.0)
                    + Vec2::new(
                        0.05 * ((i * 7 % 5) as f64 - 2.0),
                        0.05 * ((i * 3 % 5) as f64 - 2.0),
                    )
            })
            .collect();
        let t = procrustes_align(&src, &dst).unwrap();
        let rms: f64 = (src
            .iter()
            .zip(&dst)
            .map(|(&s, &d)| t.apply(s).dist_sq(d))
            .sum::<f64>()
            / src.len() as f64)
            .sqrt();
        assert!(rms < 0.2, "rms {rms}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(procrustes_align(&[Vec2::ZERO], &[Vec2::ZERO]).is_none());
        let same = vec![Vec2::new(1.0, 1.0); 4];
        let spread = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
        ];
        assert!(procrustes_align(&same, &spread).is_none());
    }

    #[test]
    fn rotation_matrix_is_orthogonal() {
        let src = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 1.0),
            Vec2::new(1.0, 4.0),
        ];
        let dst: Vec<Vec2> = src
            .iter()
            .map(|p| p.rotated(2.0) + Vec2::new(1.0, 1.0))
            .collect();
        let t = procrustes_align(&src, &dst).unwrap();
        let r = t.rot;
        let col0 = Vec2::new(r[0], r[2]);
        let col1 = Vec2::new(r[1], r[3]);
        assert!((col0.norm() - 1.0).abs() < 1e-9);
        assert!((col1.norm() - 1.0).abs() < 1e-9);
        assert!(col0.dot(col1).abs() < 1e-9);
        // mat_vec sanity.
        assert!(
            mat_vec([0.0, -1.0, 1.0, 0.0], Vec2::new(1.0, 0.0)).dist(Vec2::new(0.0, 1.0)) < 1e-12
        );
    }
}
