//! MDS-MAP localization (Shang et al.).
//!
//! The centralized spectral baseline:
//!
//! 1. Estimate all-pairs distances by weighted shortest paths through the
//!    measurement graph (Dijkstra; measured ranges as edge weights).
//! 2. Classical multidimensional scaling: double-center the squared
//!    distance matrix and take the top-2 eigenpairs — a *relative* map.
//! 3. Align the relative map to the anchors with a similarity Procrustes
//!    transform (reflection allowed).
//!
//! Shortest paths overestimate Euclidean distances wherever the field is
//! non-convex, so MDS-MAP shares DV-Hop's weakness on C/O-shaped networks
//! while using ranging information the range-free methods ignore.
//!
//! Only the connected component containing the most anchors is mapped;
//! other nodes stay unlocalized. Communication is modeled as a centralized
//! collection: every node forwards its measurement list once (`messages =
//! N`, ParticleBelief-sized payloads are not involved — a compact
//! per-neighbor list is charged).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wsnloc::{LocalizationResult, Localizer};
use wsnloc_geom::{Matrix, Vec2};
use wsnloc_net::accounting::CommStats;
use wsnloc_net::Network;
use wsnloc_obs::Stopwatch;

use crate::procrustes::procrustes_align;

/// Classical MDS over shortest-path distances with anchor alignment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MdsMap;

/// Min-heap entry for Dijkstra.
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance.
        // Total order keeps the heap consistent even if a NaN sneaks in.
        other.dist.total_cmp(&self.dist)
    }
}

/// Single-source weighted shortest paths over the measurement graph.
fn dijkstra(network: &Network, source: usize) -> Vec<f64> {
    let n = network.len();
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for m in network.measurements_of(u) {
            let v = if m.a == u { m.b } else { m.a };
            let nd = d + m.distance;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

impl Localizer for MdsMap {
    fn name(&self) -> String {
        "MDS-MAP".to_string()
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        let start = Stopwatch::start();
        let n = network.len();
        let mut result = LocalizationResult::empty(n);
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }

        // Component with the most anchors.
        let (labels, comps) = network.topology().components();
        let mut anchor_count = vec![0usize; comps];
        for (id, _) in network.anchors() {
            anchor_count[labels[id]] += 1;
        }
        let Some((best_comp, &best_anchors)) =
            anchor_count.iter().enumerate().max_by_key(|&(_, c)| *c)
        else {
            return finish(result, network, start);
        };
        if best_anchors < 2 {
            return finish(result, network, start);
        }
        let members: Vec<usize> = (0..n).filter(|&v| labels[v] == best_comp).collect();
        let m = members.len();
        if m < 3 {
            return finish(result, network, start);
        }
        let local_index: std::collections::BTreeMap<usize, usize> =
            members.iter().enumerate().map(|(k, &v)| (v, k)).collect();

        // All-pairs shortest paths within the component.
        let mut d2 = Matrix::zeros(m, m);
        for (k, &v) in members.iter().enumerate() {
            let dist = dijkstra(network, v);
            for (l, &w) in members.iter().enumerate() {
                let d = dist[w];
                debug_assert!(d.is_finite(), "component member unreachable");
                d2[(k, l)] = d * d;
            }
        }
        // Symmetrize (Dijkstra asymmetries only from float noise).
        for k in 0..m {
            for l in (k + 1)..m {
                let avg = (d2[(k, l)] + d2[(l, k)]) / 2.0;
                d2[(k, l)] = avg;
                d2[(l, k)] = avg;
            }
        }

        // Double centering: B = -0.5 · J D² J.
        let row_mean: Vec<f64> = (0..m)
            .map(|k| (0..m).map(|l| d2[(k, l)]).sum::<f64>() / m as f64)
            .collect();
        let grand = row_mean.iter().sum::<f64>() / m as f64;
        let mut b = Matrix::zeros(m, m);
        for k in 0..m {
            for l in 0..m {
                b[(k, l)] = -0.5 * (d2[(k, l)] - row_mean[k] - row_mean[l] + grand);
            }
        }

        let (vals, vecs) = b.symmetric_eigen();
        if vals.len() < 2 || vals[1] <= 0.0 {
            return finish(result, network, start);
        }
        let relative: Vec<Vec2> = (0..m)
            .map(|k| Vec2::new(vecs[(k, 0)] * vals[0].sqrt(), vecs[(k, 1)] * vals[1].sqrt()))
            .collect();

        // Anchor alignment.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for (id, pos) in network.anchors() {
            if let Some(&k) = local_index.get(&id) {
                src.push(relative[k]);
                dst.push(pos);
            }
        }
        let Some(transform) = procrustes_align(&src, &dst) else {
            return finish(result, network, start);
        };
        for (k, &v) in members.iter().enumerate() {
            if !network.is_anchor(v) {
                result.estimates[v] = Some(transform.apply(relative[k]));
            }
        }
        finish(result, network, start)
    }
}

fn finish(
    mut result: LocalizationResult,
    network: &Network,
    start: Stopwatch,
) -> LocalizationResult {
    // Centralized collection: every node reports its neighbor list once;
    // charge 8 bytes per incident measurement plus a header.
    let bytes: u64 = (0..network.len())
        .map(|u| 5 + 8 * network.measurements_of(u).count() as u64)
        .sum();
    result.comm = CommStats {
        messages: network.len() as u64,
        bytes,
    };
    result.iterations = 1;
    result.converged = true;
    result.elapsed_secs = start.elapsed_secs();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, GroundTruth, RadioModel, RangingModel};

    fn world(seed: u64, noise: f64) -> (Network, GroundTruth) {
        NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 60,
            anchors: AnchorStrategy::Grid { count: 6 },
            radio: RadioModel::UnitDisk { range: 140.0 },
            ranging: RangingModel::Multiplicative { factor: noise },
        }
        .build(seed)
    }

    fn mean_err(net: &Network, truth: &GroundTruth) -> f64 {
        let r = MdsMap.localize(net, 0);
        let errs: Vec<f64> = r
            .errors_for(truth, Some(net))
            .into_iter()
            .flatten()
            .collect();
        assert!(!errs.is_empty(), "MDS-MAP localized nothing");
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn low_noise_dense_network_maps_well() {
        let (net, truth) = world(1, 0.02);
        let err = mean_err(&net, &truth);
        // Shortest-path inflation bounds accuracy, but a dense convex field
        // should map within ~half the radio range.
        assert!(err < 80.0, "mean error {err}");
    }

    #[test]
    fn error_grows_with_noise() {
        let mut low_total = 0.0;
        let mut high_total = 0.0;
        for seed in 0..3 {
            let (nl, tl) = world(10 + seed, 0.02);
            let (nh, th) = world(10 + seed, 0.35);
            low_total += mean_err(&nl, &tl);
            high_total += mean_err(&nh, &th);
        }
        assert!(
            high_total > low_total,
            "noise should hurt: low {low_total}, high {high_total}"
        );
    }

    #[test]
    fn dijkstra_shortest_paths_sane() {
        let (net, truth) = world(2, 0.05);
        let d = dijkstra(&net, 0);
        assert_eq!(d[0], 0.0);
        for m in net.measurements_of(0) {
            let v = if m.a == 0 { m.b } else { m.a };
            assert!(d[v] <= m.distance + 1e-9);
        }
        // Path distance upper-bounds are at least Euclidean (up to noise).
        for (v, &dv) in d.iter().enumerate().skip(1) {
            if dv.is_finite() {
                let euclid = truth.position(0).dist(truth.position(v));
                assert!(dv > euclid * 0.6, "path {dv} vs euclid {euclid}");
            }
        }
    }

    #[test]
    fn single_anchor_component_is_skipped() {
        let (net, _) = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 20,
            anchors: AnchorStrategy::Random { count: 1 },
            radio: RadioModel::UnitDisk { range: 200.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        }
        .build(3);
        let r = MdsMap.localize(&net, 0);
        for u in net.unknowns() {
            assert_eq!(r.estimates[u], None);
        }
    }

    #[test]
    fn communication_counts_every_node_once() {
        let (net, _) = world(4, 0.05);
        let r = MdsMap.localize(&net, 0);
        assert_eq!(r.comm.messages, net.len() as u64);
        assert!(r.comm.bytes >= 5 * net.len() as u64);
    }

    #[test]
    fn deterministic() {
        let (net, _) = world(5, 0.05);
        assert_eq!(
            MdsMap.localize(&net, 0).estimates,
            MdsMap.localize(&net, 1).estimates
        );
    }
}
