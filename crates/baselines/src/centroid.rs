//! Centroid and weighted-centroid localization (Bulusu et al.).
//!
//! The simplest anchor-proximity schemes: a node that hears `k ≥ 1` anchors
//! estimates its position as their (weighted) average. Zero cooperation,
//! zero iteration — the floor the cooperative methods are measured against.
//!
//! Communication: each anchor broadcasts its position once
//! (`messages = #anchors`, AnchorAnnounce-sized payloads).

use wsnloc::{LocalizationResult, Localizer};
use wsnloc_geom::Vec2;
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::Network;
use wsnloc_obs::Stopwatch;

/// Unweighted centroid of heard anchors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Centroid;

/// Centroid weighted by inverse measured distance (closer anchors count
/// more).
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedCentroid;

fn anchor_comm(network: &Network) -> CommStats {
    let msg = WireMessage::AnchorAnnounce {
        anchor: 0,
        position: Vec2::ZERO,
        hops: 0,
    };
    CommStats {
        messages: network.anchor_count() as u64,
        bytes: (network.anchor_count() * msg.encoded_len()) as u64,
    }
}

fn run(network: &Network, weighted: bool) -> LocalizationResult {
    let start = Stopwatch::start();
    let mut result = LocalizationResult::empty(network.len());
    for (id, pos) in network.anchors() {
        result.estimates[id] = Some(pos);
        result.uncertainty[id] = Some(0.0);
    }
    for u in network.unknowns() {
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for m in network.measurements_of(u) {
            let v = if m.a == u { m.b } else { m.a };
            if let Some(pos) = network.anchor_position(v) {
                points.push(pos);
                weights.push(if weighted {
                    1.0 / m.distance.max(1e-6)
                } else {
                    1.0
                });
            }
        }
        if !points.is_empty() {
            result.estimates[u] = Vec2::weighted_centroid(&points, &weights);
        }
    }
    result.comm = anchor_comm(network);
    result.iterations = 1;
    result.converged = true;
    result.elapsed_secs = start.elapsed_secs();
    result
}

impl Localizer for Centroid {
    fn name(&self) -> String {
        "Centroid".to_string()
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        run(network, false)
    }
}

impl Localizer for WeightedCentroid {
    fn name(&self) -> String {
        "WCL".to_string()
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        run(network, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::{Aabb, Shape};
    use wsnloc_net::{Measurement, NodeKind, RadioModel, RangingModel};

    /// One unknown hearing two anchors at known distances.
    fn two_anchor_world() -> Network {
        let a0 = Vec2::new(0.0, 0.0);
        let a1 = Vec2::new(10.0, 0.0);
        Network::from_parts(
            Shape::Rect(Aabb::from_size(10.0, 10.0)),
            RadioModel::UnitDisk { range: 20.0 },
            RangingModel::AdditiveGaussian { sigma: 0.1 },
            vec![NodeKind::Anchor, NodeKind::Anchor, NodeKind::Unknown],
            vec![Some(a0), Some(a1), None],
            vec![None; 3],
            vec![
                Measurement {
                    a: 0,
                    b: 2,
                    distance: 2.0,
                },
                Measurement {
                    a: 1,
                    b: 2,
                    distance: 8.0,
                },
            ],
        )
    }

    #[test]
    fn centroid_averages_anchors() {
        let net = two_anchor_world();
        let r = Centroid.localize(&net, 0);
        assert_eq!(r.estimates[2], Some(Vec2::new(5.0, 0.0)));
    }

    #[test]
    fn weighted_centroid_leans_toward_near_anchor() {
        let net = two_anchor_world();
        let r = WeightedCentroid.localize(&net, 0);
        let est = r.estimates[2].unwrap();
        // Weights 1/2 vs 1/8 → x = 10·(1/8)/(1/2+1/8) = 2.
        assert!((est.x - 2.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn unknown_without_anchor_neighbors_unlocalized() {
        let net = Network::from_parts(
            Shape::Rect(Aabb::from_size(10.0, 10.0)),
            RadioModel::UnitDisk { range: 1.0 },
            RangingModel::AdditiveGaussian { sigma: 0.1 },
            vec![NodeKind::Anchor, NodeKind::Unknown, NodeKind::Unknown],
            vec![Some(Vec2::ZERO), None, None],
            vec![None; 3],
            vec![Measurement {
                a: 1,
                b: 2,
                distance: 1.0,
            }],
        );
        let r = Centroid.localize(&net, 0);
        assert_eq!(r.estimates[1], None);
        assert_eq!(r.estimates[2], None);
        assert!((r.coverage(net.unknowns()) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn anchors_carry_their_positions() {
        let net = two_anchor_world();
        let r = WeightedCentroid.localize(&net, 0);
        assert_eq!(r.estimates[0], Some(Vec2::new(0.0, 0.0)));
        assert_eq!(r.estimates[1], Some(Vec2::new(10.0, 0.0)));
    }

    #[test]
    fn communication_is_one_broadcast_per_anchor() {
        let net = two_anchor_world();
        let r = Centroid.localize(&net, 0);
        assert_eq!(r.comm.messages, 2);
        assert_eq!(r.comm.bytes, 2 * 23);
    }

    #[test]
    fn names() {
        assert_eq!(Centroid.name(), "Centroid");
        assert_eq!(WeightedCentroid.name(), "WCL");
    }
}
