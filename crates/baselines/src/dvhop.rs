//! DV-Hop localization (Niculescu & Nath).
//!
//! The canonical range-free baseline, in three phases:
//!
//! 1. Every anchor floods the network; each node records its minimum hop
//!    count to each anchor.
//! 2. Each anchor computes its *average hop size* — the mean geographic
//!    distance per hop to the other anchors — and floods it.
//! 3. Each unknown converts hop counts into distance estimates using the
//!    hop size of its nearest anchor, then multilaterates.
//!
//! DV-Hop needs no ranging hardware but assumes hop counts track geographic
//! distance, which fails in C/O-shaped fields where shortest paths detour
//! around holes — the effect experiment F7 measures.
//!
//! Communication: each flood re-broadcasts once per node per anchor, so
//! `messages ≈ 2 · #anchors · N` (announce + hop-size phases).

use wsnloc::{LocalizationResult, Localizer};
use wsnloc_geom::Vec2;
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::Network;
use wsnloc_obs::Stopwatch;

use crate::multilateration::Multilateration;

/// DV-Hop with NLS position solving.
#[derive(Debug, Clone, Copy)]
pub struct DvHop {
    /// Refine the multilateration with Gauss–Newton.
    pub refine: bool,
}

impl Default for DvHop {
    fn default() -> Self {
        DvHop { refine: true }
    }
}

impl Localizer for DvHop {
    fn name(&self) -> String {
        "DV-Hop".to_string()
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        let start = Stopwatch::start();
        let n = network.len();
        let mut result = LocalizationResult::empty(n);
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }

        let anchors: Vec<(usize, Vec2)> = network.anchors().collect();
        if anchors.len() >= 2 {
            // Phase 1: hop counts from every anchor (the BFS stands in for
            // the distributed flood).
            let hop_tables: Vec<Vec<Option<u32>>> = network
                .topology()
                .hops_from_all(&anchors.iter().map(|&(id, _)| id).collect::<Vec<_>>());

            // Phase 2: per-anchor average hop size.
            let hop_sizes: Vec<Option<f64>> = anchors
                .iter()
                .enumerate()
                .map(|(k, &(_, pk))| {
                    let mut dist_sum = 0.0;
                    let mut hop_sum = 0u64;
                    for (j, &(aj, pj)) in anchors.iter().enumerate() {
                        if j == k {
                            continue;
                        }
                        if let Some(h) = hop_tables[k][aj] {
                            dist_sum += pk.dist(pj);
                            hop_sum += h as u64;
                        }
                    }
                    (hop_sum > 0).then(|| dist_sum / hop_sum as f64)
                })
                .collect();

            // Phase 3: per-unknown distance estimates and multilateration.
            for u in network.unknowns() {
                // Hop size adopted from the nearest (fewest-hop) anchor with
                // a defined hop size — the standard DV-Hop rule.
                let nearest = anchors
                    .iter()
                    .enumerate()
                    .filter_map(|(k, _)| {
                        hop_tables[k][u].and_then(|h| hop_sizes[k].map(|s| (h, s)))
                    })
                    .min_by_key(|&(h, _)| h);
                let Some((_, hop_size)) = nearest else {
                    continue;
                };
                let refs: Vec<(Vec2, f64)> = anchors
                    .iter()
                    .enumerate()
                    .filter_map(|(k, &(_, p))| hop_tables[k][u].map(|h| (p, h as f64 * hop_size)))
                    .collect();
                if let Some(est) = Multilateration::solve(&refs, self.refine, 10) {
                    result.estimates[u] =
                        Some(network.field_bounds().inflated(50.0).clamp_point(est));
                }
            }
        }

        // Two flood phases, each re-broadcast once per node per anchor.
        let announce = WireMessage::AnchorAnnounce {
            anchor: 0,
            position: Vec2::ZERO,
            hops: 0,
        };
        let hopsize = WireMessage::HopSizeAnnounce {
            anchor: 0,
            meters_per_hop: 0.0,
        };
        let floods = (anchors.len() * n) as u64;
        result.comm = CommStats {
            messages: 2 * floods,
            bytes: floods * (announce.encoded_len() + hopsize.encoded_len()) as u64,
        };
        result.iterations = 1;
        result.converged = true;
        result.elapsed_secs = start.elapsed_secs();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::Shape;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn dense_world(seed: u64) -> (Network, wsnloc_net::GroundTruth) {
        NetworkBuilder {
            deployment: Deployment::uniform_square(1000.0),
            node_count: 150,
            anchors: AnchorStrategy::Random { count: 15 },
            radio: RadioModel::UnitDisk { range: 180.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(seed)
    }

    #[test]
    fn dvhop_localizes_dense_network() {
        let (net, truth) = dense_world(1);
        let r = DvHop::default().localize(&net, 0);
        let errs: Vec<f64> = r
            .errors_for(&truth, Some(&net))
            .into_iter()
            .flatten()
            .collect();
        assert!(!errs.is_empty());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        // DV-Hop typically lands around 0.3–1.2 R in dense uniform fields.
        assert!(mean < 250.0, "mean error {mean}");
        // Coverage should be high in a connected network.
        assert!(r.coverage(net.unknowns()) > 0.9);
    }

    #[test]
    fn too_few_anchors_leaves_unknowns() {
        let (net, _) = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 30,
            anchors: AnchorStrategy::Random { count: 1 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(2);
        let r = DvHop::default().localize(&net, 0);
        for u in net.unknowns() {
            assert_eq!(r.estimates[u], None);
        }
    }

    #[test]
    fn communication_scales_with_anchors_and_nodes() {
        let (net, _) = dense_world(3);
        let r = DvHop::default().localize(&net, 0);
        let expected = 2 * (net.anchor_count() * net.len()) as u64;
        assert_eq!(r.comm.messages, expected);
        assert!(r.comm.bytes > 0);
    }

    #[test]
    fn c_shape_inflates_dvhop_error() {
        // Hop paths detour around the C's hole → hop-distance overestimates.
        let mk = |shape: Shape, seed: u64| {
            NetworkBuilder {
                deployment: Deployment::Uniform(shape),
                node_count: 180,
                anchors: AnchorStrategy::Random { count: 18 },
                radio: RadioModel::UnitDisk { range: 160.0 },
                ranging: RangingModel::Multiplicative { factor: 0.1 },
            }
            .build(seed)
        };
        let mut square_err = 0.0;
        let mut c_err = 0.0;
        for seed in 0..3 {
            let (net_s, truth_s) = mk(
                Shape::Rect(wsnloc_geom::Aabb::from_size(1000.0, 1000.0)),
                seed,
            );
            let (net_c, truth_c) = mk(Shape::standard_c(1000.0), seed);
            let mean = |net: &Network, truth: &wsnloc_net::GroundTruth| {
                let r = DvHop::default().localize(net, 0);
                let errs: Vec<f64> = r
                    .errors_for(truth, Some(net))
                    .into_iter()
                    .flatten()
                    .collect();
                errs.iter().sum::<f64>() / errs.len().max(1) as f64
            };
            square_err += mean(&net_s, &truth_s);
            c_err += mean(&net_c, &truth_c);
        }
        assert!(
            c_err > square_err,
            "C-shape error {c_err} should exceed square {square_err}"
        );
    }

    #[test]
    fn deterministic() {
        let (net, _) = dense_world(4);
        let a = DvHop::default().localize(&net, 0);
        let b = DvHop::default().localize(&net, 0);
        assert_eq!(a.estimates, b.estimates);
    }
}
