//! Least-squares multilateration.
//!
//! The standard range-based point-solution: a node hearing `k ≥ 3` anchors
//! solves for its position from the measured distances. Two stages:
//!
//! 1. **LLS** — the classic linearization that subtracts one anchor's circle
//!    equation from the others, giving a linear system in `(x, y)`.
//! 2. **Gauss–Newton refinement** — iterative nonlinear least squares on the
//!    true residuals `‖x − a_i‖ − d_i`, started from the LLS solution.
//!
//! With `iterative: true`, localized unknowns are promoted to pseudo-anchors
//! and the sweep repeats until no new node can be solved (the "iterative
//! multilateration" of Savvides et al.) — a non-Bayesian form of cooperation
//! that propagates error without tracking uncertainty, which is exactly the
//! weakness the paper's Bayesian formulation addresses.
//!
//! Communication: one broadcast per anchor, plus one per promoted
//! pseudo-anchor per round in iterative mode.

use wsnloc::{LocalizationResult, Localizer};
use wsnloc_geom::{Matrix, Vec2};
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::Network;
use wsnloc_obs::Stopwatch;

/// Configurable multilateration baseline.
#[derive(Debug, Clone, Copy)]
pub struct Multilateration {
    /// Run Gauss–Newton refinement after the linear solve.
    pub refine: bool,
    /// Promote localized nodes to pseudo-anchors and iterate.
    pub iterative: bool,
    /// Gauss–Newton iterations.
    pub gn_iterations: usize,
}

impl Default for Multilateration {
    fn default() -> Self {
        Multilateration {
            refine: true,
            iterative: false,
            gn_iterations: 10,
        }
    }
}

impl Multilateration {
    /// Non-iterative NLS against true anchors only.
    pub fn nls() -> Self {
        Multilateration::default()
    }

    /// Iterative multilateration with pseudo-anchor promotion.
    pub fn iterative() -> Self {
        Multilateration {
            iterative: true,
            ..Multilateration::default()
        }
    }

    /// Solves one node from `(anchor position, measured distance)` pairs.
    /// Returns `None` with fewer than three references or a degenerate
    /// geometry.
    pub fn solve(refs: &[(Vec2, f64)], refine: bool, gn_iterations: usize) -> Option<Vec2> {
        if refs.len() < 3 {
            return None;
        }
        let initial = lls(refs)?;
        if !refine {
            return Some(initial);
        }
        Some(gauss_newton(refs, initial, gn_iterations))
    }
}

/// Linearized least squares: subtract the last anchor's equation.
fn lls(refs: &[(Vec2, f64)]) -> Option<Vec2> {
    let n = refs.len();
    let (pn, dn) = refs[n - 1];
    let mut a_rows = Vec::with_capacity(n - 1);
    let mut b = Vec::with_capacity(n - 1);
    for &(p, d) in &refs[..n - 1] {
        a_rows.push(vec![2.0 * (p.x - pn.x), 2.0 * (p.y - pn.y)]);
        b.push(p.norm_sq() - pn.norm_sq() + dn * dn - d * d);
    }
    let rows: Vec<&[f64]> = a_rows.iter().map(std::vec::Vec::as_slice).collect();
    let a = Matrix::from_rows(&rows);
    let sol = a.solve_least_squares(&b)?;
    let p = Vec2::new(sol[0], sol[1]);
    p.is_finite().then_some(p)
}

/// Gauss–Newton on the range residuals.
fn gauss_newton(refs: &[(Vec2, f64)], mut x: Vec2, iterations: usize) -> Vec2 {
    for _ in 0..iterations {
        let mut jtj = Matrix::zeros(2, 2);
        let mut jtr = [0.0; 2];
        for &(p, d) in refs {
            let diff = x - p;
            let dist = diff.norm().max(1e-9);
            let residual = dist - d;
            let grad = diff / dist;
            jtj[(0, 0)] += grad.x * grad.x;
            jtj[(0, 1)] += grad.x * grad.y;
            jtj[(1, 1)] += grad.y * grad.y;
            jtr[0] += grad.x * residual;
            jtr[1] += grad.y * residual;
        }
        jtj[(1, 0)] = jtj[(0, 1)];
        // Levenberg damping keeps degenerate geometries stable.
        jtj[(0, 0)] += 1e-9;
        jtj[(1, 1)] += 1e-9;
        let Some(step) = jtj.solve_spd(&jtr) else {
            break;
        };
        let delta = Vec2::new(step[0], step[1]);
        x -= delta;
        if delta.norm() < 1e-9 {
            break;
        }
    }
    x
}

impl Localizer for Multilateration {
    fn name(&self) -> String {
        match (self.iterative, self.refine) {
            (true, _) => "Iter-NLS".to_string(),
            (false, true) => "NLS".to_string(),
            (false, false) => "LLS".to_string(),
        }
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        let start = Stopwatch::start();
        let n = network.len();
        let mut result = LocalizationResult::empty(n);
        // Reference set: position + "is pseudo" flag per node.
        let mut reference: Vec<Option<Vec2>> = vec![None; n];
        for (id, pos) in network.anchors() {
            reference[id] = Some(pos);
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }
        let mut broadcasts = network.anchor_count() as u64;

        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut progressed = false;
            for u in network.unknowns() {
                if result.estimates[u].is_some() {
                    continue;
                }
                let refs: Vec<(Vec2, f64)> = network
                    .measurements_of(u)
                    .filter_map(|m| {
                        let v = if m.a == u { m.b } else { m.a };
                        reference[v].map(|p| (p, m.distance))
                    })
                    .collect();
                if let Some(est) = Multilateration::solve(&refs, self.refine, self.gn_iterations) {
                    let est = network.field_bounds().inflated(100.0).clamp_point(est);
                    result.estimates[u] = Some(est);
                    progressed = true;
                    if self.iterative {
                        reference[u] = Some(est);
                        broadcasts += 1;
                    }
                }
            }
            if !self.iterative || !progressed {
                break;
            }
        }

        let msg = WireMessage::AnchorAnnounce {
            anchor: 0,
            position: Vec2::ZERO,
            hops: 0,
        };
        result.comm = CommStats {
            messages: broadcasts,
            bytes: broadcasts * msg.encoded_len() as u64,
        };
        result.iterations = rounds;
        result.converged = true;
        result.elapsed_secs = start.elapsed_secs();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::{Aabb, Shape};
    use wsnloc_net::{GroundTruth, Measurement, NodeKind, RadioModel, RangingModel};

    fn exact_refs(truth: Vec2, anchors: &[Vec2]) -> Vec<(Vec2, f64)> {
        anchors.iter().map(|&a| (a, truth.dist(a))).collect()
    }

    #[test]
    fn solve_recovers_exact_position() {
        let truth = Vec2::new(37.0, 59.0);
        let anchors = [
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 10.0),
            Vec2::new(40.0, 95.0),
        ];
        let refs = exact_refs(truth, &anchors);
        let est = Multilateration::solve(&refs, true, 15).unwrap();
        assert!(est.dist(truth) < 1e-6, "estimate {est}");
        // LLS alone is also exact with noise-free ranges.
        let lls_est = Multilateration::solve(&refs, false, 0).unwrap();
        assert!(lls_est.dist(truth) < 1e-6);
    }

    #[test]
    fn refinement_beats_lls_under_noise() {
        let truth = Vec2::new(50.0, 50.0);
        let anchors = [
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(0.0, 100.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(50.0, 0.0),
        ];
        // Deterministic pseudo-noise.
        let noisy: Vec<(Vec2, f64)> = anchors
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, truth.dist(a) + [3.0, -2.0, 1.5, -1.0, 2.5][i]))
            .collect();
        let lls_est = Multilateration::solve(&noisy, false, 0).unwrap();
        let nls_est = Multilateration::solve(&noisy, true, 20).unwrap();
        assert!(nls_est.dist(truth) <= lls_est.dist(truth) + 1e-9);
    }

    #[test]
    fn two_references_insufficient() {
        let refs = vec![(Vec2::ZERO, 5.0), (Vec2::new(10.0, 0.0), 5.0)];
        assert!(Multilateration::solve(&refs, true, 10).is_none());
    }

    #[test]
    fn collinear_anchors_dont_crash() {
        let truth = Vec2::new(5.0, 7.0);
        let anchors = [
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(20.0, 0.0),
        ];
        let refs = exact_refs(truth, &anchors);
        // Collinear anchors cannot resolve the off-axis coordinate: the LLS
        // start lies on the anchor line and Gauss–Newton's y-gradient
        // vanishes there by symmetry. The contract is graceful degradation —
        // a finite estimate whose along-axis coordinate is inside the
        // anchor span — not recovery.
        if let Some(est) = Multilateration::solve(&refs, true, 20) {
            assert!(est.is_finite(), "estimate {est}");
            assert!((-5.0..=25.0).contains(&est.x), "x {est}");
        }
    }

    fn chain_network() -> (Network, GroundTruth) {
        // Anchors 0,1,2 around unknown 3; unknown 4 only hears 1,2,3.
        let p = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(50.0, 90.0),
            Vec2::new(50.0, 30.0),
            Vec2::new(80.0, 60.0),
        ];
        let mk = |a: usize, b: usize| Measurement {
            a,
            b,
            distance: p[a].dist(p[b]),
        };
        let net = Network::from_parts(
            Shape::Rect(Aabb::from_size(100.0, 100.0)),
            RadioModel::UnitDisk { range: 120.0 },
            RangingModel::AdditiveGaussian { sigma: 0.5 },
            vec![
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Unknown,
                NodeKind::Unknown,
            ],
            vec![Some(p[0]), Some(p[1]), Some(p[2]), None, None],
            vec![None; 5],
            vec![mk(0, 3), mk(1, 3), mk(2, 3), mk(1, 4), mk(2, 4), mk(3, 4)],
        );
        (net, GroundTruth::from_positions(p))
    }

    #[test]
    fn iterative_mode_extends_coverage() {
        let (net, truth) = chain_network();
        // Non-iterative: node 4 has only 2 true-anchor refs → unlocalized.
        let plain = Multilateration::nls().localize(&net, 0);
        assert!(plain.estimates[3].is_some());
        assert_eq!(plain.estimates[4], None);
        // Iterative: node 3 promotes, node 4 gets a third reference.
        let iter = Multilateration::iterative().localize(&net, 0);
        let e4 = iter.estimates[4].expect("promoted coverage");
        assert!(e4.dist(truth.position(4)) < 2.0, "estimate {e4}");
        assert!(iter.comm.messages > plain.comm.messages);
        assert!(iter.iterations >= 2);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(Multilateration::nls().name(), "NLS");
        assert_eq!(Multilateration::iterative().name(), "Iter-NLS");
        let lls_only = Multilateration {
            refine: false,
            iterative: false,
            gn_iterations: 0,
        };
        assert_eq!(lls_only.name(), "LLS");
    }
}
