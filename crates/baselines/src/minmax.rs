//! Min-Max (bounding box) localization (Savvides et al.).
//!
//! Each heard anchor at measured distance `d` constrains the node to the
//! square `[x−d, x+d] × [y−d, y+d]`; the estimate is the center of the
//! intersection of all such boxes. Cheap, robust, and biased toward box
//! centers — a classic low-cost baseline.
//!
//! Communication: one broadcast per anchor, as for centroid methods.

use wsnloc::{LocalizationResult, Localizer};
use wsnloc_geom::Vec2;
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::Network;
use wsnloc_obs::Stopwatch;

/// Bounding-box intersection localization.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMax;

impl Localizer for MinMax {
    fn name(&self) -> String {
        "Min-Max".to_string()
    }

    fn localize(&self, network: &Network, _seed: u64) -> LocalizationResult {
        let start = Stopwatch::start();
        let mut result = LocalizationResult::empty(network.len());
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }
        for u in network.unknowns() {
            let mut bbox: Option<(Vec2, Vec2)> = None;
            for m in network.measurements_of(u) {
                let v = if m.a == u { m.b } else { m.a };
                if let Some(pos) = network.anchor_position(v) {
                    let d = Vec2::splat(m.distance);
                    let (lo, hi) = (pos - d, pos + d);
                    bbox = Some(match bbox {
                        None => (lo, hi),
                        Some((blo, bhi)) => (blo.max(lo), bhi.min(hi)),
                    });
                }
            }
            if let Some((lo, hi)) = bbox {
                // An inconsistent (inverted) intersection still has a
                // well-defined center — the midpoint remains the best guess.
                let center = (lo + hi) * 0.5;
                result.estimates[u] = Some(network.field_bounds().clamp_point(center));
                result.uncertainty[u] = Some(
                    // Half-diagonal of the box as an uncertainty proxy.
                    ((hi.x - lo.x).abs() + (hi.y - lo.y).abs()) / 4.0,
                );
            }
        }
        let msg = WireMessage::AnchorAnnounce {
            anchor: 0,
            position: Vec2::ZERO,
            hops: 0,
        };
        result.comm = CommStats {
            messages: network.anchor_count() as u64,
            bytes: (network.anchor_count() * msg.encoded_len()) as u64,
        };
        result.iterations = 1;
        result.converged = true;
        result.elapsed_secs = start.elapsed_secs();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::{Aabb, Shape};
    use wsnloc_net::{Measurement, NodeKind, RadioModel, RangingModel};

    fn world(measurements: Vec<Measurement>) -> Network {
        Network::from_parts(
            Shape::Rect(Aabb::from_size(100.0, 100.0)),
            RadioModel::UnitDisk { range: 200.0 },
            RangingModel::AdditiveGaussian { sigma: 0.1 },
            vec![
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Unknown,
            ],
            vec![
                Some(Vec2::new(0.0, 0.0)),
                Some(Vec2::new(100.0, 0.0)),
                Some(Vec2::new(0.0, 100.0)),
                None,
            ],
            vec![None; 4],
            measurements,
        )
    }

    #[test]
    fn exact_ranges_give_small_error() {
        let truth = Vec2::new(30.0, 40.0);
        let net = world(vec![
            Measurement {
                a: 0,
                b: 3,
                distance: truth.dist(Vec2::new(0.0, 0.0)),
            },
            Measurement {
                a: 1,
                b: 3,
                distance: truth.dist(Vec2::new(100.0, 0.0)),
            },
            Measurement {
                a: 2,
                b: 3,
                distance: truth.dist(Vec2::new(0.0, 100.0)),
            },
        ]);
        let r = MinMax.localize(&net, 0);
        let est = r.estimates[3].unwrap();
        // Min-Max is biased but should land within ~15 m here.
        assert!(est.dist(truth) < 15.0, "estimate {est}");
        assert!(r.uncertainty[3].unwrap() > 0.0);
    }

    #[test]
    fn single_anchor_gives_box_center() {
        let net = world(vec![Measurement {
            a: 0,
            b: 3,
            distance: 10.0,
        }]);
        let r = MinMax.localize(&net, 0);
        // Box is [-10,10]² centered on the anchor at the origin, clamped
        // into the field → center (0,0) clamps to itself (it's a corner).
        assert_eq!(r.estimates[3], Some(Vec2::new(0.0, 0.0)));
    }

    #[test]
    fn no_anchor_contact_unlocalized() {
        let net = world(vec![]);
        let r = MinMax.localize(&net, 0);
        assert_eq!(r.estimates[3], None);
    }

    #[test]
    fn estimate_stays_in_field() {
        let net = world(vec![Measurement {
            a: 0,
            b: 3,
            distance: 300.0,
        }]);
        let r = MinMax.localize(&net, 0);
        let est = r.estimates[3].unwrap();
        assert!(net.field_bounds().contains(est));
    }
}
