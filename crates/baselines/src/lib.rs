//! # wsnloc-baselines
//!
//! Baseline WSN localization algorithms the paper's BNL-PK is compared
//! against, all implementing [`wsnloc::Localizer`] so the evaluation harness
//! treats every algorithm uniformly:
//!
//! - [`centroid::Centroid`] — average of heard anchor positions (Bulusu).
//! - [`centroid::WeightedCentroid`] — inverse-distance-weighted variant.
//! - [`minmax::MinMax`] — bounding-box intersection of anchor constraints.
//! - [`multilateration::Multilateration`] — linear least squares + optional
//!   Gauss–Newton refinement against anchor neighbors, with optional
//!   iterative promotion of localized nodes to pseudo-anchors.
//! - [`dvhop::DvHop`] — the classic hop-count algorithm: anchor floods,
//!   meters-per-hop calibration, multilateration on hop-distance estimates.
//! - [`mdsmap::MdsMap`] — classical multidimensional scaling over the
//!   shortest-path distance matrix, aligned to anchors by Procrustes.
//!
//! Communication accounting is idealized per algorithm and documented on
//! each type (flood counts for DV-Hop, single broadcasts for centroid-type
//! methods, a centralized collection sweep for MDS-MAP).

#![warn(missing_docs)]

pub mod centroid;
pub mod dvhop;
pub mod mdsmap;
pub mod minmax;
pub mod multilateration;
pub mod procrustes;

pub use centroid::{Centroid, WeightedCentroid};
pub use dvhop::DvHop;
pub use mdsmap::MdsMap;
pub use minmax::MinMax;
pub use multilateration::Multilateration;
