//! Corridor (C-shaped) network: why hop-count methods fail around holes
//! and how region pre-knowledge fixes the bounding-box problem.
//!
//! Nodes live on a C-shaped band (a building wing, a mine gallery, a road
//! around a lake). Hop-based distance estimates detour around the opening,
//! so DV-Hop collapses; a bounding-box prior wastes most of its mass on the
//! hole. Knowing the corridor *shape* is cheap pre-knowledge — the paper's
//! region prior — and this example measures what it buys.
//!
//! ```text
//! cargo run -p wsnloc --release --example corridor
//! ```

use wsnloc::prelude::*;
use wsnloc_baselines::{DvHop, MdsMap};

const SIDE: f64 = 1000.0;

fn main() {
    let corridor = Shape::standard_c(SIDE);
    let scenario = Scenario {
        name: "corridor".into(),
        deployment: Deployment::Uniform(corridor.clone()),
        node_count: 220,
        anchors: AnchorStrategy::Random { count: 22 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.08 },
        seed: 0xC0881D,
    };
    let (net, truth) = scenario.build_trial(0);
    let r = scenario.nominal_range();
    println!(
        "corridor network: {} nodes on a C-shaped band, {} anchors, avg degree {:.1}",
        net.len(),
        net.anchor_count(),
        net.avg_degree()
    );

    let bnl_region = BnlLocalizer::builder(Backend::particle(250).expect("valid backend"))
        .prior(PriorModel::Region(corridor))
        .max_iterations(10)
        .tolerance(3.0)
        .try_build()
        .expect("valid config");
    let nbp = BnlLocalizer::builder(Backend::particle(250).expect("valid backend"))
        .max_iterations(10)
        .tolerance(3.0)
        .try_build()
        .expect("valid config");

    let algos: Vec<(&str, &dyn Localizer)> = vec![
        ("BNL-PK (corridor shape prior)", &bnl_region),
        ("NBP (bounding box only)", &nbp),
        ("DV-Hop", &DvHop { refine: true }),
        ("MDS-MAP", &MdsMap),
    ];

    println!(
        "{:<34} {:>9} {:>8} {:>9}",
        "algorithm", "mean (m)", "mean/R", "coverage"
    );
    for (label, algo) in algos {
        let result = algo.localize(&net, 0);
        let errs: Vec<f64> = result
            .errors_for(&truth, Some(&net))
            .into_iter()
            .flatten()
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "{label:<34} {mean:>9.1} {:>8.3} {:>9.2}",
            mean / r,
            result.coverage(net.unknowns())
        );
    }

    // Quantify the hop-distance distortion that breaks DV-Hop here: compare
    // network shortest-path distances with straight-line distances for a
    // few far-apart anchor pairs.
    println!("\nhop-path inflation across the C opening (why DV-Hop fails):");
    let anchors: Vec<(usize, Vec2)> = net.anchors().collect();
    let mut shown = 0;
    for i in 0..anchors.len() {
        for j in (i + 1)..anchors.len() {
            let (ai, pi) = anchors[i];
            let (aj, pj) = anchors[j];
            let euclid = pi.dist(pj);
            if euclid < SIDE * 0.55 {
                continue; // only far pairs illustrate the detour
            }
            if let Some(hops) = net.topology().hops_from(ai)[aj] {
                let hop_dist = hops as f64 * r;
                println!(
                    "  anchors {ai:>3}–{aj:<3}: straight {euclid:>6.0} m, ≥{hops:>2} hops (≈{hop_dist:>6.0} m path), inflation {:.2}x",
                    hop_dist / euclid
                );
                shown += 1;
                if shown >= 5 {
                    return;
                }
            }
        }
    }
}
