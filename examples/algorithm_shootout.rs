//! Algorithm shootout: every localizer in the workspace on one network,
//! with error, coverage, communication, and runtime side by side — a
//! one-network version of experiment T2 that also demonstrates the
//! evaluation harness API.
//!
//! ```text
//! cargo run -p wsnloc --release --example algorithm_shootout [trials]
//! ```

use wsnloc::prelude::*;
use wsnloc_baselines::{Centroid, DvHop, MdsMap, MinMax, Multilateration, WeightedCentroid};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let scenario = Scenario::standard_with_preknowledge(100.0);
    let r = scenario.nominal_range();
    println!(
        "scenario '{}': {} nodes, {} trials, R = {r} m",
        scenario.name, scenario.node_count, trials
    );

    let bnl = BnlLocalizer::builder(Backend::particle(200).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 100.0 })
        .max_iterations(10)
        .tolerance(3.0)
        .try_build()
        .expect("valid config");
    let bnl_grid = BnlLocalizer::builder(Backend::grid(40).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 100.0 })
        .max_iterations(6)
        .tolerance(3.0)
        .try_build()
        .expect("valid config");
    let nbp = BnlLocalizer::builder(Backend::particle(200).expect("valid backend"))
        .max_iterations(10)
        .tolerance(3.0)
        .try_build()
        .expect("valid config");

    let algos: Vec<&dyn Localizer> = vec![
        &bnl,
        &bnl_grid,
        &nbp,
        &Multilateration {
            refine: true,
            iterative: true,
            gn_iterations: 10,
        },
        &Multilateration {
            refine: true,
            iterative: false,
            gn_iterations: 10,
        },
        &DvHop { refine: true },
        &MdsMap,
        &WeightedCentroid,
        &Centroid,
        &MinMax,
    ];

    println!(
        "\n{:<18} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "algorithm", "mean/R", "p90/R", "coverage", "msgs/node", "KiB/node", "secs"
    );
    for algo in algos {
        // Average over trials by hand — the wsnloc-eval crate wraps this
        // pattern, but the core API alone is enough.
        let mut errs = Vec::new();
        let mut cov = 0.0;
        let mut msgs = 0.0;
        let mut bytes = 0.0;
        let mut secs = 0.0;
        for t in 0..trials {
            let (net, truth) = scenario.build_trial(t);
            let result = algo.localize(&net, t);
            errs.extend(result.errors_for(&truth, Some(&net)).into_iter().flatten());
            cov += result.coverage(net.unknowns()) / trials as f64;
            msgs += result.comm.messages_per_node(net.len()) / trials as f64;
            bytes += result.comm.bytes as f64 / net.len() as f64 / 1024.0 / trials as f64;
            secs += result.elapsed_secs / trials as f64;
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let p90 = errs
            .get((errs.len() as f64 * 0.9) as usize)
            .copied()
            .unwrap_or(f64::NAN);
        println!(
            "{:<18} {:>8.3} {:>8.3} {:>8.2} {:>9.1} {:>10.3} {:>9.4}",
            algo.name(),
            mean / r,
            p90 / r,
            cov,
            msgs,
            bytes,
            secs
        );
    }
}
