//! RSSI channel calibration as pre-knowledge: anchors know their mutual
//! distances, so their pairwise RSSI readings identify the path-loss
//! channel *before* any unknown node is localized. This example runs the
//! full loop — generate anchor RSSI samples, fit the channel, convert it
//! into the inference likelihood — and compares localization under the
//! calibrated channel against a mis-specified (assumed textbook) channel.
//!
//! ```text
//! cargo run -p wsnloc --release --example channel_calibration
//! ```

use wsnloc::prelude::*;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_net::rssi::{calibrate_from_anchors, PathLossModel};

fn main() {
    // The true channel is harsher than the textbook assumption.
    let true_channel = PathLossModel {
        p0_dbm: -43.0,
        d0: 1.0,
        exponent: 3.6, // cluttered environment
        sigma_db: 5.0,
    };
    let assumed_channel = PathLossModel::typical_outdoor(); // η = 3, σ = 4

    // World whose ranging errors come from the *true* channel.
    let scenario = Scenario {
        name: "calibration".into(),
        deployment: Deployment::planned_square_drop(800.0, 4, 80.0),
        node_count: 160,
        anchors: AnchorStrategy::Random { count: 20 },
        radio: RadioModel::LogNormal {
            range: 160.0,
            path_loss_exp: true_channel.exponent,
            sigma_db: true_channel.sigma_db,
        },
        ranging: true_channel.ranging_model(),
        seed: 0xCA11B,
    };
    let (net, truth) = scenario.build_trial(0);
    println!(
        "world: {} nodes, {} anchors, true channel η = {}, σ = {} dB",
        net.len(),
        net.anchor_count(),
        true_channel.exponent,
        true_channel.sigma_db
    );

    // --- Calibration phase -------------------------------------------
    let mut rng = Xoshiro256pp::seed_from(7);
    let (fitted, samples) = calibrate_from_anchors(&net, &true_channel, &mut rng);
    let fitted = fitted.expect("anchor pairs available for calibration");
    println!(
        "calibration: {} anchor-pair samples → η̂ = {:.2} (true {}), σ̂ = {:.2} dB (true {})",
        samples.len(),
        fitted.exponent,
        true_channel.exponent,
        fitted.sigma_db,
        true_channel.sigma_db
    );

    // --- Localization under each channel assumption -------------------
    // What nodes actually record is RSSI; distance estimates come from
    // inverting an assumed channel. Mis-calibration therefore *biases every
    // distance*, not just the likelihood width: we reconstruct each
    // measurement's RSSI under the true channel and re-invert it under the
    // assumed one.
    let r = scenario.nominal_range();
    let runs = [
        ("true channel (oracle)", true_channel),
        ("calibrated channel", fitted),
        ("textbook assumption", assumed_channel),
    ];
    println!(
        "\n{:<26} {:>9} {:>8}",
        "assumed channel", "mean (m)", "mean/R"
    );
    for (label, channel) in runs {
        let measurements: Vec<wsnloc_net::Measurement> = net
            .measurements()
            .iter()
            .map(|m| {
                let rssi = true_channel.expected_rssi(m.distance);
                wsnloc_net::Measurement {
                    a: m.a,
                    b: m.b,
                    distance: channel.distance_from_rssi(rssi),
                }
            })
            .collect();
        let reinterpreted = Network::from_parts(
            net.field().clone(),
            net.radio(),
            channel.ranging_model(),
            (0..net.len()).map(|i| net.kind(i)).collect(),
            (0..net.len()).map(|i| net.anchor_position(i)).collect(),
            (0..net.len()).map(|i| net.planned_position(i)).collect(),
            measurements,
        );
        let result = BnlLocalizer::builder(Backend::particle(250).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 80.0 })
            .max_iterations(10)
            .tolerance(3.0)
            .try_build()
            .expect("valid config")
            .localize(&reinterpreted, 0);
        let errs: Vec<f64> = result
            .errors_for(&truth, Some(&reinterpreted))
            .into_iter()
            .flatten()
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!("{label:<26} {mean:>9.1} {:>8.3}", mean / r);
    }
    println!("\n(calibrated ≈ oracle; the textbook channel biases every inverted range)");
}
