//! Tracking a mobile network: nodes drift by random waypoint while the
//! tracker carries each step's posterior into the next step as
//! pre-knowledge. Run side by side with a memoryless localizer under the
//! same tight 2-iteration-per-step budget.
//!
//! ```text
//! cargo run -p wsnloc --release --example mobile_tracking [speed_mps]
//! ```

use wsnloc::prelude::*;
use wsnloc::TrackingLocalizer;
use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};

fn main() {
    let speed: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let mut world = MobileWorld::new(
        Shape::Rect(Aabb::from_size(600.0, 600.0)),
        80,
        10,
        RadioModel::UnitDisk { range: 150.0 },
        RangingModel::Multiplicative { factor: 0.1 },
        RandomWaypoint {
            min_speed: speed,
            max_speed: speed,
            pause: 0.0,
        },
        1.0, // 1 s per step
        0x30B11E,
    );

    let tight = BnlLocalizer::builder(Backend::particle(200).expect("valid backend"))
        .max_iterations(2)
        .tolerance(0.0)
        .try_build()
        .expect("valid config");
    let mut tracker = TrackingLocalizer::builder(tight.clone())
        .motion_per_step(speed * 1.5)
        .try_build()
        .expect("valid tracker");

    println!("80 nodes, 10 anchors, nodes move at {speed} m/s, 2 BP iterations per step\n");
    println!(
        "{:>4} {:>16} {:>20}",
        "t", "tracking err (m)", "memoryless err (m)"
    );
    for t in 0..12u64 {
        let net = world.step();
        let truth = GroundTruth::from_positions(world.positions().to_vec());
        let score = |r: &LocalizationResult| {
            let errs: Vec<f64> = r
                .errors_for(&truth, Some(&net))
                .into_iter()
                .flatten()
                .collect();
            errs.iter().sum::<f64>() / errs.len().max(1) as f64
        };
        let tracked = score(&tracker.step(&net, t));
        let fresh = score(&tight.localize(&net, t));
        println!("{t:>4} {tracked:>16.1} {fresh:>20.1}");
    }
    println!("\n(the tracker amortizes inference across steps; the memoryless run");
    println!(" restarts from a flat prior every second and never catches up)");
}
