//! Quickstart: simulate a sensor network, localize it with BNL-PK, print
//! the error statistics.
//!
//! ```text
//! cargo run -p wsnloc --release --example quickstart
//! ```

use wsnloc::prelude::*;

fn main() {
    // 1. Describe the world: 225 nodes aimed at a 5×5 drop grid over a
    //    1 km² field with 100 m landing scatter, 10% random anchors, 150 m
    //    unit-disk radios, 10% multiplicative ranging noise.
    let scenario = Scenario::standard_with_preknowledge(100.0);
    let (network, truth) = scenario.build_trial(0);
    println!(
        "network: {} nodes, {} anchors, avg degree {:.1}",
        network.len(),
        network.anchor_count(),
        network.avg_degree()
    );

    // 2. Configure the localizer: particle-based Bayesian-network inference
    //    with drop-point pre-knowledge priors. The builder validates the
    //    configuration up front instead of panicking at localize time.
    let localizer = BnlLocalizer::builder(Backend::particle(300).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 100.0 })
        .max_iterations(10)
        .tolerance(3.0)
        .try_build()
        .expect("valid localizer configuration");

    // 3. Localize.
    let result = localizer.localize(&network, 0);
    println!(
        "inference: {} iterations, converged = {}, {:.2}s",
        result.iterations, result.converged, result.elapsed_secs
    );
    println!(
        "communication: {:.1} messages/node, {:.2} KiB/node",
        result.comm.messages_per_node(network.len()),
        result.comm.bytes as f64 / network.len() as f64 / 1024.0
    );

    // 4. Score against the hidden ground truth.
    let r = scenario.nominal_range();
    let errors: Vec<f64> = result
        .errors_for(&truth, Some(&network))
        .into_iter()
        .flatten()
        .collect();
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let mut sorted = errors.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    println!(
        "error: mean {:.1} m ({:.3} R), median {:.1} m ({:.3} R) over {} unknowns",
        mean,
        mean / r,
        median,
        median / r,
        errors.len()
    );

    // 5. Draw the field: ground truth '.', estimates 'o', anchors 'A'.
    let anchor_positions: Vec<Vec2> = network.anchors().map(|(_, p)| p).collect();
    println!(
        "{}",
        wsnloc_net::plot::render_network_map(
            network.field_bounds(),
            truth.positions(),
            &result.estimates,
            &anchor_positions,
            72,
        )
    );

    // 6. Per-node uncertainty is part of the output — show the most and
    //    least certain unknowns.
    let mut by_spread: Vec<(usize, f64)> = network
        .unknowns()
        .filter_map(|id| result.uncertainty[id].map(|s| (id, s)))
        .collect();
    by_spread.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if let (Some(best), Some(worst)) = (by_spread.first(), by_spread.last()) {
        println!(
            "belief spread: tightest node {} at {:.1} m, loosest node {} at {:.1} m",
            best.0, best.1, worst.0, worst.1
        );
    }
}
