//! Forest-monitoring deployment: sensors dropped from an aircraft along
//! planned flight lines, localized with and without using the flight plan
//! as pre-knowledge.
//!
//! The drop plan — four passes of eight drop points each — is exactly the
//! kind of pre-knowledge the paper exploits: each sensor's *intended*
//! coordinate is known before any radio contact, its landed position is
//! not (wind scatter). The example quantifies what that plan is worth, and
//! what happens when the wind is stronger than the plan assumed
//! (mis-specified priors).
//!
//! ```text
//! cargo run -p wsnloc --release --example forest_drop
//! ```

use wsnloc::prelude::*;

const FIELD: f64 = 1200.0;
const SCATTER: f64 = 90.0; // true wind scatter (meters)

fn flight_plan() -> Vec<Vec2> {
    // Four west-east passes, eight drops each.
    let mut targets = Vec::new();
    for pass in 0..4 {
        let y = FIELD * (pass as f64 + 0.5) / 4.0;
        for k in 0..8 {
            targets.push(Vec2::new(FIELD * (k as f64 + 0.5) / 8.0, y));
        }
    }
    targets
}

fn scenario() -> Scenario {
    Scenario {
        name: "forest-drop".into(),
        deployment: Deployment::DropPoints {
            targets: flight_plan(),
            sigma: SCATTER,
            field: Some(Shape::Rect(Aabb::from_size(FIELD, FIELD))),
        },
        node_count: 192, // six sensors per drop point
        anchors: AnchorStrategy::Perimeter { count: 14 },
        radio: RadioModel::LogNormal {
            range: 160.0,
            path_loss_exp: 3.2, // forest: heavy foliage attenuation
            sigma_db: 4.0,
        },
        ranging: RangingModel::from_rssi(4.0, 3.2),
        seed: 0xF0_4E57,
    }
}

fn mean_error(result: &LocalizationResult, net: &Network, truth: &GroundTruth) -> f64 {
    let errs: Vec<f64> = result
        .errors_for(truth, Some(net))
        .into_iter()
        .flatten()
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

fn main() {
    let scenario = scenario();
    let (net, truth) = scenario.build_trial(0);
    let r = scenario.nominal_range();
    println!(
        "forest deployment: {} sensors, {} perimeter anchors, avg degree {:.1}, RSSI ranging",
        net.len(),
        net.anchor_count(),
        net.avg_degree()
    );

    let runs: Vec<(&str, PriorModel)> = vec![
        ("no pre-knowledge (NBP)", PriorModel::Uninformative),
        (
            "flight plan, correct wind model",
            PriorModel::DropPoint { sigma: SCATTER },
        ),
        (
            "flight plan, wind underestimated 3x",
            PriorModel::DropPoint {
                sigma: SCATTER / 3.0,
            },
        ),
        (
            "flight plan, wind overestimated 3x",
            PriorModel::DropPoint {
                sigma: SCATTER * 3.0,
            },
        ),
    ];

    println!("{:<40} {:>9} {:>9}", "configuration", "mean (m)", "mean/R");
    for (label, prior) in runs {
        let localizer = BnlLocalizer::builder(Backend::particle(250).expect("valid backend"))
            .prior(prior)
            .max_iterations(10)
            .tolerance(3.0)
            .try_build()
            .expect("valid config");
        let result = localizer.localize(&net, 0);
        let err = mean_error(&result, &net, &truth);
        println!("{label:<40} {err:>9.1} {:>9.3}", err / r);
    }

    // How informative was the plan by itself? (No radio at all.)
    let plan_only: f64 = net
        .unknowns()
        .map(|id| {
            net.planned_position(id)
                .map_or(f64::NAN, |p| p.dist(truth.position(id)))
        })
        .sum::<f64>()
        / net.unknowns().count() as f64;
    println!(
        "{:<40} {plan_only:>9.1} {:>9.3}   (plan coordinates used directly)",
        "flight plan alone, no measurements",
        plan_only / r
    );
}
