#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the repro suite output.

Reads the template EXPERIMENTS.template.md and replaces every
``@@TABLE:<id>@@`` marker with the corresponding table block (from ``## <ID>``
up to the blank line before ``wrote``/next section) found in the given repro
output files (searched in order, later files win).
"""

import re
import sys

def load_tables(paths):
    tables = {}
    for path in paths:
        try:
            text = open(path).read()
        except FileNotFoundError:
            continue
        # Split on '## ' section heads.
        for match in re.finditer(r"^## ([A-Z0-9]+) — .*?(?=\n\n|\Z)", text, re.S | re.M):
            tid = match.group(1).lower()
            tables[tid] = match.group(0).rstrip()
    return tables

def main():
    template = open("EXPERIMENTS.template.md").read()
    tables = load_tables(sys.argv[1:])
    missing = []
    def sub(m):
        tid = m.group(1)
        if tid in tables:
            return "```\n" + tables[tid] + "\n```"
        missing.append(tid)
        return f"*(table {tid} not yet generated)*"
    out = re.sub(r"@@TABLE:([a-z0-9]+)@@", sub, template)
    open("EXPERIMENTS.md", "w").write(out)
    if missing:
        print("missing tables:", ", ".join(missing))
    else:
        print("EXPERIMENTS.md assembled with", len(tables), "tables")

if __name__ == "__main__":
    main()
