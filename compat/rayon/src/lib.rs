//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim implements the *subset* of the rayon API the workspace uses —
//! `par_iter()` / `into_par_iter()` pipelines ending in `collect`/`sum`,
//! and `ThreadPoolBuilder` / `ThreadPool::install` — on top of
//! `std::thread::scope`. Semantics the workspace relies on are preserved:
//!
//! - **Order preservation:** `collect` returns results in input order, so
//!   synchronous-schedule BP stays bit-deterministic across pool sizes.
//! - **Real parallelism:** items are chunked across OS threads; small
//!   inputs run inline to avoid spawn overhead in inner loops.
//! - **Pool-size control:** `ThreadPool::install` scopes an effective
//!   thread count so scaling experiments can compare 1 thread vs many.
//!
//! To use the real crate instead, point the `rayon` entry of
//! `[workspace.dependencies]` back at a registry version; no call sites
//! need to change.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Effective thread count installed by [`ThreadPool::install`];
    /// `None` means "use the machine's available parallelism".
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn effective_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Minimum items per work chunk before forking threads pays for itself.
const MIN_CHUNK: usize = 16;

/// Applies `f` to every item, preserving order, forking across threads when
/// the input is large enough and more than one thread is in effect.
fn map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads().max(1);
    let n = items.len();
    if threads == 1 || n < 2 * MIN_CHUNK {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads).max(MIN_CHUNK);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut boxed: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut item_tail: &mut [Option<T>] = &mut boxed;
    let mut out_tail: &mut [Option<R>] = &mut out;
    std::thread::scope(|scope| {
        while !item_tail.is_empty() {
            let take = chunk.min(item_tail.len());
            let (item_head, rest_items) = item_tail.split_at_mut(take);
            let (out_head, rest_out) = out_tail.split_at_mut(take);
            item_tail = rest_items;
            out_tail = rest_out;
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_head.iter_mut().zip(item_head.iter_mut()) {
                    // `take()` is infallible here: every slot was `Some` above.
                    if let Some(item) = item.take() {
                        *slot = Some(f(item));
                    }
                }
            });
        }
    });
    out.into_iter().flatten().collect()
}

/// A not-yet-consumed parallel pipeline over owned items.
///
/// Unlike real rayon this is strict: adapters buffer, terminals fork. That
/// keeps the shim tiny while preserving call-site compatibility.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced by the pipeline.
    type Item: Send;
    /// Converts `self` into the shim's parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on shared slices, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel pipeline over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Terminal and adapter operations on [`ParIter`], mirroring
/// `rayon::iter::ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Item type flowing through the pipeline.
    type Item: Send;

    /// Maps every item through `f` (runs when the pipeline is consumed).
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    /// Collects results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C;

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.collect::<Vec<_>>().into_iter().sum()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: map_ordered(self.items, f),
        }
    }

    fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; the shim never
/// actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (machine-sized) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads; `0` restores the machine default.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible in the shim, but keeps rayon's
    /// `Result` signature so call sites stay source-compatible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped effective-parallelism setting mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect for every
    /// `par_iter` reached (transitively) from the closure on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|slot| slot.replace(self.num_threads));
        let result = f();
        INSTALLED_THREADS.with(|slot| slot.set(previous));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<u64> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        // `data` still usable: par_iter borrowed it.
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (0..5000u64).into_par_iter().map(|x| x).sum();
        assert_eq!(total, 5000 * 4999 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pool build is infallible");
        let inside = pool.install(super::effective_threads);
        assert_eq!(inside, 1);
        // Outside install the machine default is back.
        assert!(super::effective_threads() >= 1);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let run = |threads: usize| -> Vec<u64> {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible")
                .install(|| {
                    (0..500u64)
                        .into_par_iter()
                        .map(|x| x.wrapping_mul(x))
                        .collect()
                })
        };
        assert_eq!(run(1), run(4));
    }
}
