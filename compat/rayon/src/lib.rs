//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim implements the *subset* of the rayon API the workspace uses —
//! `par_iter()` / `into_par_iter()` pipelines ending in `collect`/`sum`,
//! and `ThreadPoolBuilder` / `ThreadPool::install` — on top of a
//! lazily-initialized persistent worker pool. Semantics the workspace
//! relies on are preserved:
//!
//! - **Order preservation:** `collect` returns results in input order, so
//!   synchronous-schedule BP stays bit-deterministic across pool sizes.
//! - **Real parallelism:** items are chunked across long-lived OS worker
//!   threads (spawned once, on first use — not per call); small inputs
//!   run inline to avoid queueing overhead in inner loops.
//! - **Pool-size control:** `ThreadPool::install` scopes an effective
//!   thread count so scaling experiments can compare 1 thread vs many.
//!   The installed count governs *chunking* (and therefore results are a
//!   pure function of it), while the shared workers simply execute
//!   whatever chunks exist, so beliefs stay bit-identical across pool
//!   sizes.
//! - **Nesting safety:** a thread waiting on its own parallel map helps
//!   drain the shared queue instead of sleeping, so `par_iter` inside a
//!   `par_iter` job (or inside nested `install` scopes) cannot deadlock.
//!
//! To use the real crate instead, point the `rayon` entry of
//! `[workspace.dependencies]` back at a registry version; no call sites
//! need to change.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Schedule-permutation hook for the determinism audit. `0` means off
/// (production default); any other value stores `seed + 1` and makes
/// every pool batch push its chunk jobs in a seeded pseudo-random order
/// instead of input order. Because output slots are fixed per chunk and
/// the batch latch drains before `map_ordered` returns, a permuted
/// schedule MUST produce bit-identical results — the audit harness
/// (`cargo xtask audit-determinism`) flips this hook to prove that no
/// caller smuggles order-dependence through the pool.
static SCHEDULE_PERMUTATION: AtomicU64 = AtomicU64::new(0);

/// Parallel maps that ran inline (single-thread install or input below
/// the chunking threshold).
static INLINE_MAPS: AtomicU64 = AtomicU64::new(0);
/// Parallel maps dispatched onto the worker pool.
static POOL_BATCHES: AtomicU64 = AtomicU64::new(0);
/// Chunk jobs pushed onto the shared queue, across all batches.
static POOL_JOBS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide dispatch counters for the shim's worker pool.
///
/// Observability consumers snapshot this before and after a workload and
/// diff the two — the counters only ever grow. Relaxed ordering: callers
/// want totals, not happens-before edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel maps that ran on the calling thread without queueing.
    pub inline_maps: u64,
    /// Parallel maps that fanned out to the worker pool.
    pub batches: u64,
    /// Chunk jobs queued across all pool batches.
    pub jobs: u64,
}

impl PoolStats {
    /// Counter-wise `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            inline_maps: self.inline_maps.saturating_sub(earlier.inline_maps),
            batches: self.batches.saturating_sub(earlier.batches),
            jobs: self.jobs.saturating_sub(earlier.jobs),
        }
    }
}

/// Snapshots the cumulative [`PoolStats`] counters.
#[must_use]
pub fn pool_stats() -> PoolStats {
    PoolStats {
        inline_maps: INLINE_MAPS.load(Ordering::Relaxed),
        batches: POOL_BATCHES.load(Ordering::Relaxed),
        jobs: POOL_JOBS.load(Ordering::Relaxed),
    }
}

/// Installs (or clears, with `None`) a deterministic permutation of the
/// order chunk jobs are pushed onto the shared queue.
///
/// Diagnostic hook for the schedule-perturbation audit: chunk *contents*
/// and output slots are untouched, only queue order changes, so results
/// must stay bit-identical. Process-global; not for production use.
pub fn set_schedule_permutation(seed: Option<u64>) {
    let encoded = seed.map_or(0, |s| s.wrapping_add(1));
    SCHEDULE_PERMUTATION.store(encoded, Ordering::Relaxed);
}

/// `splitmix64` step — the standard 64-bit mixer; tiny, seedable, and
/// dependency-free, which is all the permutation hook needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Effective thread count installed by [`ThreadPool::install`];
    /// `None` means "use the machine's available parallelism".
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn effective_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Minimum items per work chunk before forking threads pays for itself.
const MIN_CHUNK: usize = 16;

/// Locks a mutex, recovering the guard if a panicking thread poisoned it
/// (jobs run under `catch_unwind`, so state behind the lock stays
/// consistent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A type-erased chunk job sitting in the shared queue.
///
/// Jobs capture borrows of the submitting `map_ordered` frame; the
/// `'static` here is erased via [`erase_lifetime`], made sound because
/// [`run_batch`] never returns (or unwinds) until every job of its batch
/// has finished running.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The long-lived worker pool backing every parallel map.
///
/// Workers are spawned once, on first use, and park on `job_ready`
/// between calls — the per-call `std::thread::scope` spawning this
/// replaces paid OS thread creation and teardown inside every BP
/// iteration.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

/// Completion latch for one `map_ordered` call's set of chunk jobs.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    /// Jobs submitted but not yet finished.
    remaining: usize,
    /// First panic payload caught from a job, re-raised on the caller.
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    fn new(jobs: usize) -> Batch {
        Batch {
            state: Mutex::new(BatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job finished, recording its panic payload if any, and
    /// wakes batch waiters when the last job completes.
    fn finish_job(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = lock(&self.state);
        state.remaining = state.remaining.saturating_sub(1);
        if let Some(payload) = panic {
            state.panic.get_or_insert(payload);
        }
        if state.remaining == 0 {
            // Notify while still holding the state lock: the Batch lives on
            // the stack of the `map_ordered` caller, which frees it as soon
            // as `run_batch` observes remaining == 0. Holding the guard
            // across the wakeup means the waiter cannot re-acquire the lock
            // (and thus cannot return and destroy the Batch) until this
            // thread is done touching `self`.
            self.done.notify_all();
        }
    }
}

/// The process-wide pool, spawning its workers on first access.
fn pool() -> &'static Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        // The caller of every map helps execute its own batch, so the
        // machine is saturated with one fewer dedicated worker.
        let workers = std::thread::available_parallelism()
            .map_or(1, NonZeroUsize::get)
            .saturating_sub(1)
            .max(1);
        for i in 0..workers {
            let s = Arc::clone(&shared);
            // A failed spawn degrades capacity, never correctness: the
            // caller-helping loop in `run_batch` executes queued jobs
            // itself, so the map still completes.
            let _ = std::thread::Builder::new()
                .name(format!("wsnloc-par-{i}"))
                .spawn(move || worker_loop(&s));
        }
        shared
    })
}

/// A detached worker: pop a job, run it, park when the queue is empty.
fn worker_loop(shared: &PoolShared) {
    let mut queue = lock(&shared.queue);
    loop {
        match queue.pop_front() {
            Some(job) => {
                drop(queue);
                job();
                queue = lock(&shared.queue);
            }
            None => {
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// Erases the lifetime of a chunk job so it can sit in the `'static`
/// queue.
///
/// # Safety
///
/// The job borrows the submitting `map_ordered` frame's locals. The
/// caller must not return or unwind past those locals until the job has
/// finished running; [`run_batch`] enforces this by draining the batch
/// latch to zero before returning — and before re-raising any job panic.
unsafe fn erase_lifetime<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    // SAFETY: lifetime extension only — same layout, and the caller
    // upholds the contract above (the borrowed frame outlives the job).
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Job>(job) }
}

/// Blocks until every job of `batch` has finished, executing queued jobs
/// (from any batch) while waiting.
///
/// The caller lending its thread is what makes nested parallelism safe:
/// a thread blocked here never sleeps while the queue is non-empty, so a
/// `par_iter` issued from inside a pool job always finds an executor —
/// in the worst case, itself.
fn run_batch(shared: &PoolShared, batch: &Batch) {
    loop {
        let job = lock(&shared.queue).pop_front();
        if let Some(job) = job {
            job();
            continue;
        }
        // Queue empty: every job submitted before this call (including
        // all of this batch's) has been claimed by some thread, so
        // sleeping on the latch cannot strand work.
        let mut state = lock(&batch.state);
        while state.remaining > 0 {
            state = batch
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let panic = state.panic.take();
        drop(state);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        return;
    }
}

/// Applies `f` to every item, preserving order, dispatching chunks onto
/// the persistent worker pool when the input is large enough and more
/// than one thread is in effect.
///
/// Chunk boundaries depend only on the *effective* (installed) thread
/// count, never on how many workers happen to execute them, so results
/// are bit-identical across pool sizes — and identical to a sequential
/// run.
fn map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads().max(1);
    let n = items.len();
    if threads == 1 || n < 2 * MIN_CHUNK {
        INLINE_MAPS.fetch_add(1, Ordering::Relaxed);
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads).max(MIN_CHUNK);
    let jobs = n.div_ceil(chunk);
    let batch_idx = POOL_BATCHES.fetch_add(1, Ordering::Relaxed);
    POOL_JOBS.fetch_add(jobs as u64, Ordering::Relaxed);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut boxed: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let batch = Batch::new(jobs);
    let shared = pool();
    {
        let mut item_tail: &mut [Option<T>] = &mut boxed;
        let mut out_tail: &mut [Option<R>] = &mut out;
        let mut pending: Vec<Job> = Vec::with_capacity(jobs);
        while !item_tail.is_empty() {
            let take = chunk.min(item_tail.len());
            let (item_head, rest_items) = item_tail.split_at_mut(take);
            let (out_head, rest_out) = out_tail.split_at_mut(take);
            item_tail = rest_items;
            out_tail = rest_out;
            let f = &f;
            let batch = &batch;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for (slot, item) in out_head.iter_mut().zip(item_head.iter_mut()) {
                        // `take()` is infallible here: every slot was `Some` above.
                        if let Some(item) = item.take() {
                            *slot = Some(f(item));
                        }
                    }
                }));
                batch.finish_job(result.err());
            });
            // SAFETY: `run_batch` below drains the batch latch before
            // this frame (and the borrows of `f`/`boxed`/`out`/`batch`)
            // can go away, by return or by unwind.
            pending.push(unsafe { erase_lifetime(job) });
        }
        // Audit hook: under a schedule permutation, enqueue the chunk
        // jobs in a seeded shuffle (per batch) instead of input order.
        // Each job still writes only its own output slots, so this must
        // not change results — the determinism audit relies on it.
        let perm = SCHEDULE_PERMUTATION.load(Ordering::Relaxed);
        if perm != 0 && pending.len() > 1 {
            let mut state = (perm - 1) ^ batch_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for i in (1..pending.len()).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                pending.swap(i, j);
            }
        }
        let mut queue = lock(&shared.queue);
        queue.extend(pending);
        drop(queue);
        shared.job_ready.notify_all();
    }
    run_batch(shared, &batch);
    out.into_iter().flatten().collect()
}

/// A not-yet-consumed parallel pipeline over owned items.
///
/// Unlike real rayon this is strict: adapters buffer, terminals fork. That
/// keeps the shim tiny while preserving call-site compatibility.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced by the pipeline.
    type Item: Send;
    /// Converts `self` into the shim's parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on shared slices, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel pipeline over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Terminal and adapter operations on [`ParIter`], mirroring
/// `rayon::iter::ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Item type flowing through the pipeline.
    type Item: Send;

    /// Maps every item through `f` (runs when the pipeline is consumed).
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    /// Collects results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C;

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.collect::<Vec<_>>().into_iter().sum()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: map_ordered(self.items, f),
        }
    }

    fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; the shim never
/// actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (machine-sized) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads; `0` restores the machine default.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible in the shim, but keeps rayon's
    /// `Result` signature so call sites stay source-compatible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped effective-parallelism setting mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect for every
    /// `par_iter` reached (transitively) from the closure on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|slot| slot.replace(self.num_threads));
        let result = f();
        INSTALLED_THREADS.with(|slot| slot.set(previous));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<u64> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        // `data` still usable: par_iter borrowed it.
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (0..5000u64).into_par_iter().map(|x| x).sum();
        assert_eq!(total, 5000 * 4999 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pool build is infallible");
        let inside = pool.install(super::effective_threads);
        assert_eq!(inside, 1);
        // Outside install the machine default is back.
        assert!(super::effective_threads() >= 1);
    }

    #[test]
    fn schedule_permutation_does_not_change_results() {
        let run = || -> Vec<u64> {
            ThreadPoolBuilder::new()
                .num_threads(4)
                .build()
                .expect("shim pool build is infallible")
                .install(|| {
                    (0..2000u64)
                        .into_par_iter()
                        .map(|x| x.wrapping_mul(0x9E37_79B9).rotate_left(7))
                        .collect()
                })
        };
        let baseline = run();
        for seed in [0u64, 1, 42, u64::MAX] {
            set_schedule_permutation(Some(seed));
            let permuted = run();
            set_schedule_permutation(None);
            assert_eq!(baseline, permuted, "seed {seed} changed results");
        }
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let run = |threads: usize| -> Vec<u64> {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible")
                .install(|| {
                    (0..500u64)
                        .into_par_iter()
                        .map(|x| x.wrapping_mul(x))
                        .collect()
                })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn workers_are_reused_across_calls() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Count only named pool workers: any thread that calls `run_batch`
        // (e.g. other tests running concurrently under the multi-threaded
        // test harness) may help execute this test's jobs, so the total
        // distinct-ThreadId count is load-dependent. The named-worker set,
        // by contrast, is spawned exactly once — per-call spawning would
        // mint fresh worker ids on every call.
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let calls = 8;
        for _ in 0..calls {
            let v: Vec<u64> = (0..512u64)
                .into_par_iter()
                .map(|x| {
                    let current = std::thread::current();
                    if current
                        .name()
                        .is_some_and(|name| name.starts_with("wsnloc-par-"))
                    {
                        ids.lock().expect("id set lock").insert(current.id());
                    }
                    x
                })
                .collect();
            assert_eq!(v.len(), 512);
        }
        let distinct = ids.lock().expect("id set lock").len();
        let machine = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        // The pool spawns at most machine - 1 (min 1) dedicated workers,
        // once for the whole process.
        let cap = machine.saturating_sub(1).max(1);
        assert!(
            distinct <= cap,
            "thread churn: {distinct} distinct pool-worker ids across {calls} calls (cap {cap})"
        );
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("shim pool build is infallible");
        let inner = ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("shim pool build is infallible");
        let observed = outer.install(|| {
            let before = super::effective_threads();
            let nested = inner.install(super::effective_threads);
            let after = super::effective_threads();
            (before, nested, after)
        });
        assert_eq!(observed, (3, 2, 3));
    }

    #[test]
    fn nested_parallel_maps_complete() {
        // An inner par_iter issued from inside a pool job must find an
        // executor even when every worker is busy with outer jobs — the
        // caller-helping loop guarantees progress.
        let v: Vec<u64> = (0..128u64)
            .into_par_iter()
            .map(|x| {
                let inner: u64 = (0..64u64).into_par_iter().map(|y| y).sum();
                x + inner
            })
            .collect();
        let inner_sum = 64 * 63 / 2;
        for (x, &got) in v.iter().enumerate() {
            assert_eq!(got, x as u64 + inner_sum);
        }
    }

    #[test]
    fn pool_stats_count_dispatch_decisions() {
        let before = pool_stats();
        // Tiny input: runs inline regardless of thread count.
        let _: Vec<u64> = (0..4u64).into_par_iter().map(|x| x).collect();
        let mid = pool_stats().since(&before);
        assert!(mid.inline_maps >= 1);
        // Single-thread install: also inline, even for large inputs.
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pool build is infallible")
            .install(|| {
                let _: Vec<u64> = (0..512u64).into_par_iter().map(|x| x).collect();
            });
        let after = pool_stats().since(&before);
        assert!(after.inline_maps >= 2);
        // Counters are monotone.
        assert!(after.batches >= mid.batches && after.jobs >= mid.jobs);
    }

    #[test]
    fn job_panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0..256u64)
                .into_par_iter()
                .map(|x| {
                    assert!(x != 200, "deliberate test panic");
                    x
                })
                .collect();
        });
        assert!(result.is_err(), "a panicking job must fail the map");
        // The pool survives a panicked batch.
        let v: Vec<u64> = (0..256u64).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v.len(), 256);
    }
}
