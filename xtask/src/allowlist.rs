//! The audited-exception file (`xtask-lint.toml`).
//!
//! Every entry silences exactly one rule on lines of one file that contain
//! a given substring, and must carry a `reason` explaining why the
//! violation is acceptable. The parser handles the narrow TOML subset the
//! file uses — `[[allow]]` tables of `key = "string"` pairs — so the tool
//! stays dependency-free.

use std::cell::Cell;
use std::fmt;
use std::path::Path;

/// One audited exception.
#[derive(Debug)]
pub(crate) struct Entry {
    /// Rule id this entry silences (e.g. `no-unwrap`).
    pub(crate) rule: String,
    /// Workspace-relative path, forward slashes.
    pub(crate) path: String,
    /// Substring the offending line must contain.
    pub(crate) contains: String,
    /// Human justification; required.
    pub(crate) reason: String,
    /// Set when the entry silenced at least one finding (stale-entry check).
    pub(crate) used: Cell<bool>,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub(crate) struct Allowlist {
    entries: Vec<Entry>,
}

/// Error produced while reading or parsing the allowlist.
#[derive(Debug)]
pub(crate) struct ParseError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl Allowlist {
    /// Loads and parses the allowlist; a missing file is an empty allowlist.
    pub(crate) fn load(path: &Path) -> Result<Allowlist, ParseError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(err(0, e.to_string())),
        }
    }

    /// Parses the `[[allow]]` subset of TOML the allowlist uses.
    pub(crate) fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut entries = Vec::new();
        let mut current: Option<(usize, [Option<String>; 4])> = None;

        let mut finish =
            |current: &mut Option<(usize, [Option<String>; 4])>| -> Result<(), ParseError> {
                if let Some((at, [rule, path, contains, reason])) = current.take() {
                    let missing = |name| err(at, format!("[[allow]] entry missing `{name}`"));
                    entries.push(Entry {
                        rule: rule.ok_or_else(|| missing("rule"))?,
                        path: path.ok_or_else(|| missing("path"))?,
                        contains: contains.ok_or_else(|| missing("contains"))?,
                        reason: reason.ok_or_else(|| missing("reason"))?,
                        used: Cell::new(false),
                    });
                }
                Ok(())
            };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current)?;
                current = Some((lineno, [None, None, None, None]));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("unrecognized line `{line}`")));
            };
            let key = key.trim();
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(err(
                    lineno,
                    format!("value for `{key}` must be a quoted string"),
                ));
            };
            let Some((_, fields)) = current.as_mut() else {
                return Err(err(lineno, "key outside an [[allow]] entry"));
            };
            let slot = match key {
                "rule" => &mut fields[0],
                "path" => &mut fields[1],
                "contains" => &mut fields[2],
                "reason" => &mut fields[3],
                _ => return Err(err(lineno, format!("unknown key `{key}`"))),
            };
            if slot.is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
            *slot = Some(value.to_string());
        }
        finish(&mut current)?;

        for e in &entries {
            if e.reason.trim().len() < 10 {
                return Err(err(
                    0,
                    format!(
                        "entry for {}:{} has a trivial reason; justify the exception",
                        e.path, e.contains
                    ),
                ));
            }
        }
        Ok(Allowlist { entries })
    }

    /// `true` (and marks the entry used) if a finding is covered.
    pub(crate) fn permits(&self, rule: &str, path: &str, line_text: &str) -> bool {
        for e in &self.entries {
            if e.rule == rule && e.path == path && line_text.contains(&e.contains) {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding — candidates for deletion.
    pub(crate) fn stale(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(|e| !e.used.get())
    }

    /// Number of entries that silenced at least one finding.
    pub(crate) fn used_count(&self) -> usize {
        self.entries.iter().filter(|e| e.used.get()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
rule = "no-unwrap"
path = "crates/geom/src/matrix.rs"
contains = "solve(rhs).unwrap()"
reason = "factorization already checked; solve is infallible"

[[allow]]
rule = "float-eq"
path = "crates/net/src/radio.rs"
contains = "range == 0.0"
reason = "sentinel comparison against an exact literal"
"#;
        let a = Allowlist::parse(text).expect("parses");
        assert!(a.permits(
            "no-unwrap",
            "crates/geom/src/matrix.rs",
            "let x = chol.solve(rhs).unwrap();"
        ));
        assert!(!a.permits("no-unwrap", "crates/geom/src/matrix.rs", "foo.unwrap()"));
        assert!(!a.permits(
            "no-expect",
            "crates/geom/src/matrix.rs",
            "solve(rhs).unwrap()"
        ));
        assert_eq!(a.stale().count(), 1);
        assert_eq!(a.used_count(), 1);
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nrule = \"no-unwrap\"\npath = \"a.rs\"\ncontains = \"x\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn rejects_trivial_reason() {
        let text =
            "[[allow]]\nrule = \"no-unwrap\"\npath = \"a.rs\"\ncontains = \"x\"\nreason = \"ok\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/xtask-lint.toml")).expect("empty");
        assert_eq!(a.stale().count(), 0);
    }
}
