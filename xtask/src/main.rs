//! Workspace automation driver (`cargo xtask <command>`).
//!
//! Two commands make up the correctness gate described in the README's
//! "Correctness tooling" section:
//!
//! - `lint` — the token-aware static-analysis pass ([`lint`], [`token`]):
//!   panic-freedom of the library crates, seeded-only randomness,
//!   total-order float handling, deterministic map iteration, audited
//!   atomics, and SAFETY-commented `unsafe`.
//! - `audit-determinism` — the dynamic companion: drives the persistent
//!   worker pool through seeded schedule permutations and thread counts
//!   {1,2,4,8} over grid and particle BP, asserting bit-identical
//!   beliefs and metrics folds. The harness lives in `wsnloc-eval`
//!   (`audit` module); this subcommand is a thin cargo wrapper so both
//!   gates are reachable from one entry point.

mod allowlist;
mod lint;
mod token;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo xtask <command> [options]\n\
         \n\
         commands:\n\
         \x20 lint                run the repo-specific static-analysis rules over\n\
         \x20                     the workspace crates; exits 1 on any violation\n\
         \x20 audit-determinism   replay grid + particle BP under permuted worker\n\
         \x20                     schedules and thread counts {{1,2,4,8}}, asserting\n\
         \x20                     bit-identical beliefs and metrics folds\n\
         \n\
         lint options:\n\
         \x20 --root <dir>        workspace root (default: parent of xtask/)\n\
         \x20 --allowlist <file>  audited-exception file (default: <root>/xtask-lint.toml)\n\
         \x20 --deny-stale        treat stale allowlist entries as hard errors\n\
         \n\
         audit-determinism options:\n\
         \x20 --quick             reduced matrix (threads {{1,2,4}}, 3 permutation seeds)"
    );
    std::process::exit(2)
}

fn default_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is <root>/xtask at compile time; runtime cwd under
    // `cargo xtask` is the workspace root, so prefer the compile-time anchor.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    match command.as_str() {
        "lint" => run_lint(args),
        "audit-determinism" => run_audit(args),
        _ => {
            eprintln!("unknown command `{command}`");
            usage();
        }
    }
}

fn run_lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = default_root();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut deny_stale = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => usage(),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--deny-stale" => deny_stale = true,
            _ => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
        }
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("xtask-lint.toml"));

    let allow = match allowlist::Allowlist::load(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read allowlist {}: {e}",
                allowlist_path.display()
            );
            return ExitCode::from(2);
        }
    };

    match lint::run(&root, &allow) {
        Ok(report) => {
            for warning in &report.warnings {
                if deny_stale {
                    eprintln!("error: {warning}");
                } else {
                    eprintln!("warning: {warning}");
                }
            }
            let stale_fails = deny_stale && !report.warnings.is_empty();
            if report.violations.is_empty() && !stale_fails {
                eprintln!(
                    "xtask lint: clean ({} files, {} audited exceptions)",
                    report.files_scanned, report.exceptions_used
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s), {} stale allowlist entr(ies) in {} files scanned",
                    report.violations.len(),
                    if deny_stale { report.warnings.len() } else { 0 },
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Shells out to the `wsnloc-eval` repro binary, which owns the actual
/// harness — keeping xtask free of workspace dependencies so the lint
/// gate builds in seconds.
fn run_audit(args: impl Iterator<Item = String>) -> ExitCode {
    let mut cargo_args = vec![
        "run".to_string(),
        "--release".to_string(),
        "-p".to_string(),
        "wsnloc-eval".to_string(),
        "--bin".to_string(),
        "repro".to_string(),
        "--".to_string(),
        "audit-determinism".to_string(),
    ];
    for flag in args {
        match flag.as_str() {
            "--quick" => cargo_args.push(flag),
            _ => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
        }
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    match std::process::Command::new(cargo)
        .args(&cargo_args)
        .current_dir(default_root())
        .status()
    {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask audit-determinism: failed to launch cargo: {e}");
            ExitCode::from(2)
        }
    }
}
