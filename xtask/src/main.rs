//! Workspace automation driver (`cargo xtask <command>`).
//!
//! The only command so far is `lint`, the repo-specific static-analysis
//! gate described in the README's "Correctness tooling" section. It
//! enforces rules no off-the-shelf tool knows about this codebase:
//! panic-freedom of the library crates, seeded-only randomness, and
//! total-order float handling in the inference stack.

mod allowlist;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo xtask lint [--root <dir>] [--allowlist <file>]\n\
         \n\
         commands:\n\
         \x20 lint    run the repo-specific static-analysis rules over the\n\
         \x20         workspace library crates; exits 1 on any violation\n\
         \n\
         options:\n\
         \x20 --root <dir>        workspace root (default: parent of xtask/)\n\
         \x20 --allowlist <file>  audited-exception file (default: <root>/xtask-lint.toml)"
    );
    std::process::exit(2)
}

fn default_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is <root>/xtask at compile time; runtime cwd under
    // `cargo xtask` is the workspace root, so prefer the compile-time anchor.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    if command != "lint" {
        eprintln!("unknown command `{command}`");
        usage();
    }

    let mut root = default_root();
    let mut allowlist_path: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => usage(),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => usage(),
            },
            _ => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
        }
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("xtask-lint.toml"));

    let allow = match allowlist::Allowlist::load(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read allowlist {}: {e}",
                allowlist_path.display()
            );
            return ExitCode::from(2);
        }
    };

    match lint::run(&root, &allow) {
        Ok(report) => {
            for warning in &report.warnings {
                eprintln!("warning: {warning}");
            }
            if report.violations.is_empty() {
                eprintln!(
                    "xtask lint: clean ({} files, {} audited exceptions)",
                    report.files_scanned, report.exceptions_used
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
