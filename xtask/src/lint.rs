//! The repo-specific static-analysis rules.
//!
//! Rules are line-oriented: comments are stripped, doc lines and
//! `#[cfg(test)]` regions are skipped, and each surviving line is matched
//! against every rule whose scope covers the file. This is deliberately a
//! lexical tool — it has no false-negative-free guarantee, but it catches
//! the bug classes that have historically corrupted inference results
//! (panicking float comparisons, unseeded randomness, silent float→index
//! truncation) at near-zero cost and with zero dependencies.
//!
//! | id                  | scope            | what it rejects                                   |
//! |---------------------|------------------|---------------------------------------------------|
//! | `no-unwrap`         | library crates   | `.unwrap()` outside tests                         |
//! | `no-expect`         | library crates   | `.expect(` outside tests                          |
//! | `no-panic`          | library crates   | `panic!` / `todo!` / `unimplemented!` / `unreachable!` |
//! | `unseeded-rng`      | library + eval   | `thread_rng` / `from_entropy` (nondeterminism)    |
//! | `no-println`        | library + eval   | `println!` / `eprintln!` outside `src/bin/`       |
//! | `no-instant`        | all but `wsnloc-obs` | raw `Instant::now` (timing must flow through `Stopwatch`) |
//! | `partial-cmp-unwrap`| library crates   | `partial_cmp(..).unwrap()` (panics on NaN)        |
//! | `float-eq`          | library crates   | `==` / `!=` against a float literal               |
//! | `float-index-cast`  | `wsnloc-bayes`   | float→integer `as` casts in inference hot loops   |
//!
//! Audited exceptions live in `xtask-lint.toml` (see [`crate::allowlist`]).

use crate::allowlist::Allowlist;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` must be panic-free and deterministic.
const LIBRARY_CRATES: [&str; 6] = [
    "crates/geom",
    "crates/net",
    "crates/bayes",
    "crates/obs",
    "crates/core",
    "crates/baselines",
];

/// Additional roots where only the determinism (RNG) rule applies: the
/// evaluation harness may panic on broken configs, but silent
/// nondeterminism there invalidates every reported number.
const RNG_ONLY_ROOTS: [&str; 2] = ["crates/eval", "crates/bench"];

/// One rule violation at a specific source line.
#[derive(Debug)]
pub(crate) struct Violation {
    /// Workspace-relative path.
    pub(crate) path: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule id.
    pub(crate) rule: &'static str,
    /// The offending line, trimmed.
    pub(crate) excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub(crate) struct Report {
    /// Violations not covered by the allowlist, in path/line order.
    pub(crate) violations: Vec<Violation>,
    /// Non-fatal notes (stale allowlist entries).
    pub(crate) warnings: Vec<String>,
    /// Number of files scanned.
    pub(crate) files_scanned: usize,
    /// Allowlist entries that silenced at least one finding.
    pub(crate) exceptions_used: usize,
}

/// Runs every rule over the workspace at `root`.
pub(crate) fn run(root: &Path, allow: &Allowlist) -> io::Result<Report> {
    let mut report = Report::default();

    let scan_root = |rel_root: &str, rng_only: bool, report: &mut Report| -> io::Result<()> {
        let src = root.join(rel_root).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("expected source directory {} is missing", src.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            scan_file(&rel, &text, rng_only, allow, &mut report.violations);
        }
        Ok(())
    };

    for crate_root in LIBRARY_CRATES {
        scan_root(crate_root, false, &mut report)?;
    }
    for crate_root in RNG_ONLY_ROOTS {
        scan_root(crate_root, true, &mut report)?;
    }

    for stale in allow.stale() {
        report.warnings.push(format!(
            "stale allowlist entry: rule `{}` for {} (`{}`) matched nothing — delete it",
            stale.rule, stale.path, stale.contains
        ));
    }
    report.exceptions_used = allow.used_count();
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one file. `rng_only` restricts to the determinism rule.
fn scan_file(rel: &str, text: &str, rng_only: bool, allow: &Allowlist, out: &mut Vec<Violation>) {
    let in_bayes = rel.starts_with("crates/bayes/");
    let in_bin = rel.contains("/src/bin/");
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        // Everything from the test module down is exempt: by convention the
        // `#[cfg(test)] mod tests` block is the tail of each file.
        if trimmed == "#[cfg(test)]" {
            break;
        }
        // Doc lines are exempt (doctests exercise error paths freely).
        if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("//") {
            continue;
        }
        let code = strip_comment(raw);
        let line = idx + 1;
        let mut emit = |rule: &'static str| {
            if !allow.permits(rule, rel, raw) {
                out.push(Violation {
                    path: rel.to_string(),
                    line,
                    rule,
                    excerpt: raw.trim().to_string(),
                });
            }
        };

        if code.contains("thread_rng") || code.contains("from_entropy") {
            emit("unseeded-rng");
        }
        // Library and harness code must report through return values or the
        // observer layer, never ad-hoc stdout/stderr writes. Binary targets
        // (`src/bin/`) are CLI surfaces and exempt by scope; the `println!`
        // substring also covers `eprintln!`.
        if !in_bin && code.contains("println!") {
            emit("no-println");
        }
        // All wall-clock timing flows through `wsnloc_obs::Stopwatch` (and
        // the span profiler built on it); raw `Instant::now` anywhere else
        // bypasses the one timing primitive observability can account for.
        if !rel.starts_with("crates/obs/") && code.contains("Instant::now") {
            emit("no-instant");
        }
        if rng_only {
            continue;
        }

        let has_unwrap = code.contains(".unwrap()");
        if code.contains("partial_cmp") && (has_unwrap || code.contains(".expect(")) {
            emit("partial-cmp-unwrap");
        } else {
            if has_unwrap {
                emit("no-unwrap");
            }
            if code.contains(".expect(") {
                emit("no-expect");
            }
        }
        if ["panic!(", "todo!(", "unimplemented!(", "unreachable!("]
            .iter()
            .any(|m| code.contains(m))
        {
            emit("no-panic");
        }
        if float_literal_comparison(&code) {
            emit("float-eq");
        }
        if in_bayes && float_index_cast(&code) {
            emit("float-index-cast");
        }
    }
}

/// Truncates `line` at a `//` comment that is not inside a string literal.
fn strip_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1,
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return line[..i].to_string();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// `true` if the line compares something to a float literal with `==`/`!=`.
fn float_literal_comparison(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(op) {
            let at = start + pos;
            // Reject `<=`, `>=`, `!==`-like contexts and pattern `=>`.
            let before = code[..at].trim_end();
            let after = code[at + op.len()..].trim_start();
            if is_float_literal_token(first_token(after))
                || is_float_literal_token(last_token(before))
            {
                return true;
            }
            start = at + op.len();
        }
    }
    false
}

fn first_token(s: &str) -> &str {
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .unwrap_or(s.len());
    &s[..end]
}

fn last_token(s: &str) -> &str {
    let start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .map_or(0, |i| i + 1);
    &s[start..]
}

/// `true` for tokens like `0.0`, `1.5e3`, `2.`, `-3.25`, `1.0f64`.
fn is_float_literal_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    let tok = tok.strip_suffix("f64").unwrap_or(tok);
    let tok = tok.strip_suffix("f32").unwrap_or(tok);
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let mut seen_dot = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | 'e' | 'E' | '_' => {}
            '.' if !seen_dot => seen_dot = true,
            _ => return false,
        }
    }
    seen_dot
}

/// `true` if the line casts a float expression to an index type: an
/// ` as usize`/`u32`/`i64` cast on a line with float evidence (a rounding
/// call or an `f64` value) — the pattern that silently truncates or wraps
/// on NaN/negative input inside inference hot loops.
fn float_index_cast(code: &str) -> bool {
    let casts = [" as usize", " as u32", " as u64", " as i32", " as i64"];
    let float_evidence = [".floor()", ".ceil()", ".round()", ".trunc()", "f64"];
    casts.iter().any(|c| code.contains(c)) && float_evidence.iter().any(|e| code.contains(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literal_tokens() {
        assert!(is_float_literal_token("0.0"));
        assert!(is_float_literal_token("1.5"));
        assert!(is_float_literal_token("-3.25"));
        assert!(is_float_literal_token("1.0f64"));
        assert!(is_float_literal_token("1_000.5"));
        assert!(!is_float_literal_token("10"));
        assert!(!is_float_literal_token("x"));
        assert!(!is_float_literal_token("self.0"));
        assert!(!is_float_literal_token(""));
    }

    #[test]
    fn comparison_detection() {
        assert!(float_literal_comparison("if x == 0.0 {"));
        assert!(float_literal_comparison("if 1.5 != y {"));
        assert!(!float_literal_comparison("if x == y {"));
        assert!(!float_literal_comparison("if n == 10 {"));
        assert!(!float_literal_comparison("if x <= 0.5 {"));
        assert!(!float_literal_comparison("match x { _ => 0.0 }"));
    }

    #[test]
    fn comment_stripping() {
        assert_eq!(strip_comment("let x = 1; // y.unwrap()"), "let x = 1; ");
        assert_eq!(
            strip_comment("let s = \"https://a\"; x"),
            "let s = \"https://a\"; x"
        );
    }

    #[test]
    fn index_cast_detection() {
        assert!(float_index_cast("let i = (x / cell).floor() as usize;"));
        assert!(float_index_cast("let i = (p.x * inv) as usize; // f64"));
        assert!(!float_index_cast("let i = count as usize;"));
    }

    #[test]
    fn scan_flags_and_allows() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"no-unwrap\"\npath = \"crates/bayes/src/x.rs\"\n\
             contains = \"audited.unwrap()\"\nreason = \"checked non-empty two lines above\"\n",
        )
        .expect("allowlist parses");
        let text = "\
fn f() {\n\
    let a = audited.unwrap();\n\
    let b = other.unwrap();\n\
    let c = list.iter().max_by(|a, b| a.partial_cmp(b).unwrap());\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn g() { let _ = in_tests.unwrap(); }\n\
}\n";
        let mut out = Vec::new();
        scan_file("crates/bayes/src/x.rs", text, false, &allow, &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["no-unwrap", "partial-cmp-unwrap"]);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn println_rule_flags_libraries_not_binaries() {
        let allow = Allowlist::default();
        let text = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"uh oh\");\n}\n";
        let mut out = Vec::new();
        scan_file("crates/obs/src/x.rs", text, false, &allow, &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["no-println", "no-println"]);

        // The rule also covers the rng-only roots (eval/bench)...
        out.clear();
        scan_file("crates/eval/src/x.rs", text, true, &allow, &mut out);
        assert_eq!(out.len(), 2);

        // ...but binary targets are CLI surfaces and exempt.
        out.clear();
        scan_file("crates/eval/src/bin/repro.rs", text, true, &allow, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn instant_rule_exempts_only_the_obs_crate() {
        let allow = Allowlist::default();
        let text = "fn f() { let t = std::time::Instant::now(); }\n";
        // Library crates: flagged.
        let mut out = Vec::new();
        scan_file("crates/bayes/src/x.rs", text, false, &allow, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-instant");
        // Harness roots (even rng-only scope): flagged.
        out.clear();
        scan_file("crates/bench/src/x.rs", text, true, &allow, &mut out);
        assert_eq!(out.len(), 1);
        // The obs crate owns the timing primitive: exempt.
        out.clear();
        scan_file("crates/obs/src/profiler.rs", text, false, &allow, &mut out);
        assert!(out.is_empty());
        // Doc comments mentioning Instant (e.g. "Instantiates") don't trip
        // the rule; neither does the word inside a code comment.
        out.clear();
        scan_file(
            "crates/bayes/src/y.rs",
            "/// Instantiates per-run state.\nfn g() {} // Instant::now\n",
            false,
            &allow,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn rng_rule() {
        let mut out = Vec::new();
        scan_file(
            "crates/eval/src/x.rs",
            "fn f() { let mut r = rand::thread_rng(); }\n",
            true,
            &Allowlist::default(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unseeded-rng");
    }
}
