//! The repo-specific static-analysis rules.
//!
//! Rules are token-oriented: each file is lexed by [`crate::token`] (so
//! string literals, char literals, and nested block comments can never
//! produce false positives), `#[cfg(test)]` items and `mod tests` blocks
//! are removed structurally, and the surviving token stream is matched
//! against every rule whose scope covers the file. This is deliberately a
//! lexical tool — it has no false-negative-free guarantee, but it catches
//! the bug classes that have historically corrupted inference results
//! (panicking float comparisons, unseeded randomness, nondeterministic
//! map iteration, unfenced atomics) at near-zero cost and with zero
//! dependencies.
//!
//! | id                     | scope              | what it rejects                                       |
//! |------------------------|--------------------|-------------------------------------------------------|
//! | `no-unwrap`            | full               | `.unwrap()` outside tests                             |
//! | `no-expect`            | full               | `.expect(` outside tests                              |
//! | `no-panic`             | full               | `panic!` / `todo!` / `unimplemented!` / `unreachable!` |
//! | `unseeded-rng`         | full + harness     | `thread_rng` / `from_entropy` (nondeterminism)        |
//! | `no-println`           | full + harness     | `println!` / `eprintln!` outside binary targets       |
//! | `no-instant`           | all but `wsnloc-obs` | raw `Instant::now` (timing must flow through `Stopwatch`) |
//! | `partial-cmp-unwrap`   | full               | `partial_cmp(..).unwrap()` (panics on NaN)            |
//! | `float-eq`             | full               | `==` / `!=` against a float literal                   |
//! | `float-index-cast`     | `wsnloc-bayes`     | float→integer `as` casts in inference hot loops       |
//! | `no-hashmap-iter`      | full               | `HashMap`/`HashSet` (iteration order is nondeterministic: use `BTreeMap`/`BTreeSet`, sort before iterating, or audit the site as lookup-only) |
//! | `atomic-ordering-audit`| full + harness     | `Ordering::Relaxed` outside audited counter sites, `Ordering::SeqCst` (a smell: name the fence you need), atomic calls that don't name an `Ordering`, `compare_and_swap` |
//! | `unsafe-safety-comment`| full + harness     | `unsafe` without a `SAFETY`/`# Safety` comment on the same line or immediately above |
//! | `lossy-cast-audit`     | `wsnloc-bayes` + `wsnloc` core | narrowing `as` casts (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`/`f32`) that can truncate or wrap — use `try_from`/checked conversions |
//!
//! "full" scope is the library crates plus `compat/rayon` and `xtask`
//! itself; "harness" is the evaluation/bench roots, which may panic on
//! broken configs but must stay deterministic and observable. Audited
//! exceptions live in `xtask-lint.toml` (see [`crate::allowlist`]).

use crate::allowlist::Allowlist;
use crate::token::{self, LexFile, Tok, TokKind};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Roots where every rule applies: the library crates whose `src/` must
/// be panic-free and deterministic, the rayon shim (whose scheduling is
/// exactly where determinism bugs would hide), and the linter itself.
const FULL_ROOTS: [&str; 9] = [
    "crates/geom",
    "crates/net",
    "crates/bayes",
    "crates/obs",
    "crates/core",
    "crates/serve",
    "crates/baselines",
    "compat/rayon",
    "xtask",
];

/// Roots where only the determinism/observability rules apply: the
/// evaluation harness may panic on broken configs, but silent
/// nondeterminism there invalidates every reported number.
const HARNESS_ROOTS: [&str; 2] = ["crates/eval", "crates/bench"];

/// Which rule set applies to a scan root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Every rule.
    Full,
    /// Determinism and observability rules only.
    Harness,
}

/// Atomic operations that take an explicit `Ordering` argument. `swap`
/// is deliberately absent: slice/`Vec::swap` is far more common than
/// `Atomic*::swap` and a lexical tool cannot tell receivers apart.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `as` targets that can silently truncate or wrap when the source is
/// wider (or, for `f32`, lose precision).
const NARROW_CAST_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// `as` targets the float→index rule watches inside the inference crate.
const INDEX_CAST_TARGETS: [&str; 5] = ["usize", "u32", "u64", "i32", "i64"];

/// One rule violation at a specific source line.
#[derive(Debug)]
pub(crate) struct Violation {
    /// Workspace-relative path.
    pub(crate) path: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule id.
    pub(crate) rule: &'static str,
    /// The offending line, trimmed.
    pub(crate) excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub(crate) struct Report {
    /// Violations not covered by the allowlist, in path/line order.
    pub(crate) violations: Vec<Violation>,
    /// Non-fatal notes (stale allowlist entries); promoted to errors
    /// under `--deny-stale`.
    pub(crate) warnings: Vec<String>,
    /// Number of files scanned.
    pub(crate) files_scanned: usize,
    /// Allowlist entries that silenced at least one finding.
    pub(crate) exceptions_used: usize,
}

/// Runs every rule over the workspace at `root`.
pub(crate) fn run(root: &Path, allow: &Allowlist) -> io::Result<Report> {
    let mut report = Report::default();

    let scan_root = |rel_root: &str, scope: Scope, report: &mut Report| -> io::Result<()> {
        let src = root.join(rel_root).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("expected source directory {} is missing", src.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            scan_file(&rel, &text, scope, allow, &mut report.violations);
        }
        Ok(())
    };

    for crate_root in FULL_ROOTS {
        scan_root(crate_root, Scope::Full, &mut report)?;
    }
    for crate_root in HARNESS_ROOTS {
        scan_root(crate_root, Scope::Harness, &mut report)?;
    }

    for stale in allow.stale() {
        report.warnings.push(format!(
            "stale allowlist entry: rule `{}` for {} (`{}`) matched nothing — delete it",
            stale.rule, stale.path, stale.contains
        ));
    }
    report.exceptions_used = allow.used_count();
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Per-line facts precomputed from the lexed file, for the rules that
/// need line context (comment adjacency, float evidence).
struct LineFacts {
    /// `true` when at least one non-comment token sits on the line —
    /// distinguishes pure comment/attribute lines when walking upward
    /// from an `unsafe` keyword.
    has_code: Vec<bool>,
    /// `Some(has_safety)` when a comment covers the line.
    comment: Vec<Option<bool>>,
    /// Float evidence for the cast rules: a rounding-call identifier or
    /// an `f64` token appears on the line.
    float_evidence: Vec<bool>,
}

impl LineFacts {
    fn build(lexed: &LexFile, line_count: usize) -> LineFacts {
        let mut facts = LineFacts {
            has_code: vec![false; line_count + 2],
            comment: vec![None; line_count + 2],
            float_evidence: vec![false; line_count + 2],
        };
        for t in &lexed.tokens {
            if let Some(slot) = facts.has_code.get_mut(t.line) {
                *slot = true;
            }
            let evidence = t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "floor" | "ceil" | "round" | "trunc" | "f64"
                );
            if evidence {
                if let Some(slot) = facts.float_evidence.get_mut(t.line) {
                    *slot = true;
                }
            }
        }
        for c in &lexed.comments {
            for l in c.start_line..=c.end_line.min(line_count) {
                let slot = &mut facts.comment[l];
                *slot = Some(slot.unwrap_or(false) | c.has_safety);
            }
        }
        facts
    }

    /// `true` if a `SAFETY`/`# Safety` comment sits on `line` or in the
    /// contiguous run of comment/attribute/blank lines immediately above.
    fn safety_justified(&self, raw_lines: &[&str], line: usize) -> bool {
        if self.comment.get(line).copied().flatten() == Some(true) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let comment_only = !self.has_code[l] && self.comment[l].is_some();
            if comment_only {
                if self.comment[l] == Some(true) {
                    return true;
                }
                l -= 1;
                continue;
            }
            let text = raw_lines.get(l - 1).map_or("", |s| s.trim());
            if text.is_empty() || text.starts_with('#') {
                l -= 1;
                continue;
            }
            return false;
        }
        false
    }
}

/// Scans one file under the given rule scope.
fn scan_file(rel: &str, text: &str, scope: Scope, allow: &Allowlist, out: &mut Vec<Violation>) {
    let lexed = token::lex(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let facts = LineFacts::build(&lexed, raw_lines.len());
    let tokens = token::strip_test_scopes(lexed.tokens);

    let in_bayes = rel.starts_with("crates/bayes/");
    let lossy_scope = in_bayes || rel.starts_with("crates/core/");
    let in_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    let in_obs = rel.starts_with("crates/obs/");
    let full = scope == Scope::Full;

    let emit = |rule: &'static str, line: usize, out: &mut Vec<Violation>| {
        let raw = raw_lines.get(line.saturating_sub(1)).copied().unwrap_or("");
        if !allow.permits(rule, rel, raw) {
            out.push(Violation {
                path: rel.to_string(),
                line,
                rule,
                excerpt: raw.trim().to_string(),
            });
        }
    };

    let txt = |k: usize| tokens.get(k).map_or("", |t| t.text.as_str());
    let ident_at = |k: usize, name: &str| {
        tokens
            .get(k)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    };
    // `true` when an identifier `name` appears earlier on the same line —
    // chains like `a.partial_cmp(b).unwrap()` are line-local by rustfmt.
    let line_has_before = |idx: usize, name: &str| {
        let line = tokens[idx].line;
        tokens[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == line)
            .any(|t| t.kind == TokKind::Ident && t.text == name)
    };

    for idx in 0..tokens.len() {
        let t = &tokens[idx];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "thread_rng" | "from_entropy" => emit("unseeded-rng", t.line, out),
                // Library and harness code must report through return
                // values or the observer layer, never ad-hoc
                // stdout/stderr writes; binary targets are CLI surfaces
                // and exempt.
                "println" | "eprintln" if !in_bin && txt(idx + 1) == "!" => {
                    emit("no-println", t.line, out);
                }
                // All wall-clock timing flows through
                // `wsnloc_obs::Stopwatch`; raw `Instant::now` anywhere
                // else bypasses the one timing primitive observability
                // can account for.
                "Instant" if !in_obs && txt(idx + 1) == "::" && ident_at(idx + 2, "now") => {
                    emit("no-instant", t.line, out);
                }
                // Every atomic access must name its ordering at the call
                // site — a call whose argument list has no `Ordering::…`
                // path is either a different API (fine, allowlist it) or
                // an atomic hiding its fence behind an import.
                m if ATOMIC_METHODS.contains(&m)
                    && txt(idx.wrapping_sub(1)) == "."
                    && txt(idx + 1) == "(" =>
                {
                    let close = token::matching_bracket(&tokens, idx + 1);
                    let names_ordering = tokens[idx + 2..close]
                        .iter()
                        .any(|a| a.kind == TokKind::Ident && a.text == "Ordering");
                    // Zero-argument calls (e.g. some future `load()`
                    // shim) still count: atomics always take arguments.
                    if !names_ordering {
                        emit("atomic-ordering-audit", t.line, out);
                    }
                }
                // `Relaxed` provides no happens-before edge: permitted
                // only at audited monotone-counter sites (allowlisted
                // with reasons). `SeqCst` is the opposite smell — a
                // global fence where the author didn't decide which
                // acquire/release edge they needed.
                "Ordering"
                    if txt(idx + 1) == "::" && matches!(txt(idx + 2), "Relaxed" | "SeqCst") =>
                {
                    emit("atomic-ordering-audit", tokens[idx + 2].line, out);
                }
                // Deprecated pre-1.50 API with implicit SeqCst-ish
                // semantics; always wrong here.
                "compare_and_swap" => emit("atomic-ordering-audit", t.line, out),
                // Every `unsafe` block, fn, or impl needs a written
                // justification where the invariant is discharged.
                "unsafe" if !facts.safety_justified(&raw_lines, t.line) => {
                    emit("unsafe-safety-comment", t.line, out);
                }
                _ if !full => {}
                "unwrap"
                    if txt(idx.wrapping_sub(1)) == "."
                        && txt(idx + 1) == "("
                        && txt(idx + 2) == ")" =>
                {
                    if line_has_before(idx, "partial_cmp") {
                        emit("partial-cmp-unwrap", t.line, out);
                    } else {
                        emit("no-unwrap", t.line, out);
                    }
                }
                "expect" if txt(idx.wrapping_sub(1)) == "." && txt(idx + 1) == "(" => {
                    if line_has_before(idx, "partial_cmp") {
                        emit("partial-cmp-unwrap", t.line, out);
                    } else {
                        emit("no-expect", t.line, out);
                    }
                }
                "panic" | "todo" | "unimplemented" | "unreachable" if txt(idx + 1) == "!" => {
                    emit("no-panic", t.line, out);
                }
                // `HashMap`/`HashSet` iteration order varies per process:
                // any use in deterministic paths must be `BTreeMap`/
                // `BTreeSet`, an explicit sort, or an audited
                // lookup-only site.
                "HashMap" | "HashSet" => emit("no-hashmap-iter", t.line, out),
                "as" => {
                    let target = txt(idx + 1);
                    if in_bayes
                        && INDEX_CAST_TARGETS.contains(&target)
                        && facts.float_evidence.get(t.line).copied().unwrap_or(false)
                    {
                        // Float→index casts silently truncate and wrap on
                        // NaN/negative input inside inference hot loops.
                        emit("float-index-cast", t.line, out);
                    } else if lossy_scope && NARROW_CAST_TARGETS.contains(&target) {
                        emit("lossy-cast-audit", t.line, out);
                    }
                }
                _ => {}
            },
            // `==`/`!=` against a float literal: exact float comparison
            // is almost always a bug in numeric code (use total_cmp or a
            // tolerance).
            TokKind::Punct if full && matches!(t.text.as_str(), "==" | "!=") => {
                let prev_float = idx > 0
                    && tokens[idx - 1].kind == TokKind::Num
                    && token::is_float_lit(&tokens[idx - 1].text);
                let next = if txt(idx + 1) == "-" {
                    idx + 2
                } else {
                    idx + 1
                };
                let next_float = tokens
                    .get(next)
                    .is_some_and(|n| n.kind == TokKind::Num && token::is_float_lit(&n.text));
                if prev_float || next_float {
                    emit("float-eq", t.line, out);
                }
            }
            _ => {}
        }
    }
    let _ = &tokens as &Vec<Tok>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, text: &str, scope: Scope) -> Vec<(String, usize)> {
        let allow = Allowlist::default();
        let mut out = Vec::new();
        scan_file(rel, text, scope, &allow, &mut out);
        out.into_iter()
            .map(|v| (v.rule.to_string(), v.line))
            .collect()
    }

    fn rules(rel: &str, text: &str, scope: Scope) -> Vec<String> {
        scan(rel, text, scope).into_iter().map(|(r, _)| r).collect()
    }

    #[test]
    fn scan_flags_and_allows() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"no-unwrap\"\npath = \"crates/bayes/src/x.rs\"\n\
             contains = \"audited.unwrap()\"\nreason = \"checked non-empty two lines above\"\n",
        )
        .expect("allowlist parses");
        let text = "\
fn f() {\n\
    let a = audited.unwrap();\n\
    let b = other.unwrap();\n\
    let c = list.iter().max_by(|a, b| a.partial_cmp(b).unwrap());\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn g() { let _ = in_tests.unwrap(); }\n\
}\n";
        let mut out = Vec::new();
        scan_file("crates/bayes/src/x.rs", text, Scope::Full, &allow, &mut out);
        let found: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(found, vec!["no-unwrap", "partial-cmp-unwrap"]);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn cfg_test_in_the_middle_of_a_file_no_longer_exempts_the_tail() {
        // The old line scanner stopped at the first `#[cfg(test)]`; the
        // structural pass only skips the annotated item.
        let text = "\
#[cfg(test)]\n\
fn helper() { fine.unwrap(); }\n\
fn live() { caught.unwrap(); }\n";
        let found = scan("crates/net/src/x.rs", text, Scope::Full);
        assert_eq!(found, vec![("no-unwrap".to_string(), 3)]);
    }

    #[test]
    fn rule_triggers_inside_strings_do_not_fire() {
        let text = concat!(
            "fn f() {\n",
            "    let a = \"Instant::now and x.unwrap() and panic!(\";\n",
            "    let b = r#\"thread_rng HashMap println!\"#;\n",
            "}\n",
        );
        assert!(rules("crates/net/src/x.rs", text, Scope::Full).is_empty());
    }

    #[test]
    fn rule_triggers_inside_nested_block_comments_do_not_fire() {
        let text = "fn f() { /* outer /* x.unwrap() */ thread_rng */ }\n";
        assert!(rules("crates/net/src/x.rs", text, Scope::Full).is_empty());
    }

    #[test]
    fn println_rule_flags_libraries_not_binaries() {
        let text = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"uh oh\");\n}\n";
        let found = rules("crates/obs/src/x.rs", text, Scope::Full);
        assert_eq!(found, vec!["no-println", "no-println"]);

        // The rule also covers the harness roots (eval/bench)...
        assert_eq!(rules("crates/eval/src/x.rs", text, Scope::Harness).len(), 2);

        // ...but binary targets are CLI surfaces and exempt — including
        // `src/main.rs` crates like xtask itself.
        assert!(rules("crates/eval/src/bin/repro.rs", text, Scope::Harness).is_empty());
        assert!(rules("xtask/src/main.rs", text, Scope::Full).is_empty());
    }

    #[test]
    fn instant_rule_exempts_only_the_obs_crate() {
        let text = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules("crates/bayes/src/x.rs", text, Scope::Full),
            vec!["no-instant"]
        );
        assert_eq!(
            rules("crates/bench/src/x.rs", text, Scope::Harness),
            vec!["no-instant"]
        );
        assert!(rules("crates/obs/src/profiler.rs", text, Scope::Full).is_empty());
        // Doc comments mentioning Instant don't trip the rule; neither
        // does the word inside a code comment or a string literal.
        let noise = "/// Instantiates per-run state.\nfn g() { let s = \"Instant::now\"; } // Instant::now\n";
        assert!(rules("crates/bayes/src/y.rs", noise, Scope::Full).is_empty());
    }

    #[test]
    fn rng_rule() {
        let found = rules(
            "crates/eval/src/x.rs",
            "fn f() { let mut r = rand::thread_rng(); }\n",
            Scope::Harness,
        );
        assert_eq!(found, vec!["unseeded-rng"]);
    }

    #[test]
    fn harness_scope_skips_panic_and_unwrap_rules() {
        let text = "fn f() { x.unwrap(); panic!(\"boom\"); }\n";
        assert!(rules("crates/eval/src/x.rs", text, Scope::Harness).is_empty());
        assert_eq!(rules("crates/net/src/x.rs", text, Scope::Full).len(), 2);
    }

    #[test]
    fn float_eq_detection() {
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { if x == 0.0 { } }",
                Scope::Full
            ),
            vec!["float-eq"]
        );
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { if 1.5 != y { } }",
                Scope::Full
            ),
            vec!["float-eq"]
        );
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { if x == -0.5 { } }",
                Scope::Full
            ),
            vec!["float-eq"]
        );
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { if x == y { } }",
            Scope::Full
        )
        .is_empty());
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { if n == 10 { } }",
            Scope::Full
        )
        .is_empty());
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { if x <= 0.5 { } }",
            Scope::Full
        )
        .is_empty());
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { match x { _ => 0.0 } }",
            Scope::Full
        )
        .is_empty());
    }

    #[test]
    fn float_index_cast_needs_bayes_scope_and_float_evidence() {
        let cast = "fn f() { let i = (x / cell).floor() as usize; }\n";
        assert_eq!(
            rules("crates/bayes/src/x.rs", cast, Scope::Full),
            vec!["float-index-cast"]
        );
        // Same text outside bayes: not an index-cast site.
        assert!(rules("crates/net/src/x.rs", cast, Scope::Full).is_empty());
        // No float evidence on the line: plain integer cast, fine.
        assert!(rules(
            "crates/bayes/src/x.rs",
            "fn f() { let i = count as usize; }\n",
            Scope::Full
        )
        .is_empty());
    }

    #[test]
    fn hashmap_rule_flags_types_not_strings() {
        let text = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        assert_eq!(
            rules("crates/bayes/src/x.rs", text, Scope::Full),
            vec!["no-hashmap-iter", "no-hashmap-iter"]
        );
        assert!(rules(
            "crates/bayes/src/x.rs",
            "fn f() { let s = \"HashMap\"; } // HashMap\n",
            Scope::Full
        )
        .is_empty());
        // BTreeMap is the prescribed replacement and passes.
        assert!(rules(
            "crates/bayes/src/x.rs",
            "use std::collections::BTreeMap;\n",
            Scope::Full
        )
        .is_empty());
    }

    #[test]
    fn atomic_ordering_audit() {
        // Relaxed and SeqCst are flagged; Acquire/Release pass.
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { C.fetch_add(1, Ordering::Relaxed); }\n",
                Scope::Full
            ),
            vec!["atomic-ordering-audit"]
        );
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { C.store(1, Ordering::SeqCst); }\n",
                Scope::Full
            ),
            vec!["atomic-ordering-audit"]
        );
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { C.store(1, Ordering::Release); let v = C.load(Ordering::Acquire); }\n",
            Scope::Full
        )
        .is_empty());
        // An atomic call that does not name an Ordering (variant smuggled
        // in via `use Ordering::Relaxed`) is flagged at the call.
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { C.load(Relaxed); }\n",
                Scope::Full
            ),
            vec!["atomic-ordering-audit"]
        );
        // Deprecated API.
        assert_eq!(
            rules(
                "crates/net/src/x.rs",
                "fn f() { C.compare_and_swap(0, 1, Ordering::AcqRel); }\n",
                Scope::Full
            ),
            vec!["atomic-ordering-audit"]
        );
        // Harness scope still audits atomics.
        assert_eq!(
            rules(
                "crates/eval/src/x.rs",
                "fn f() { C.load(Relaxed); }\n",
                Scope::Harness
            ),
            vec!["atomic-ordering-audit"]
        );
        // Non-atomic `.load(...)` calls with an Ordering-free argument
        // list are indistinguishable lexically and must be allowlisted;
        // `Allowlist::load(path)` (no dot receiver) is not flagged.
        assert!(rules(
            "crates/net/src/x.rs",
            "fn f() { let a = Allowlist::load(path); }\n",
            Scope::Full
        )
        .is_empty());
    }

    #[test]
    fn unsafe_needs_a_safety_comment() {
        let bare = "fn f() { unsafe { core(); } }\n";
        assert_eq!(
            rules("crates/net/src/x.rs", bare, Scope::Full),
            vec!["unsafe-safety-comment"]
        );
        let justified =
            "// SAFETY: the latch is drained before return.\nfn f() { unsafe { core(); } }\n";
        // Comment directly above the line: the usual block form.
        let above = "fn f() {\n    // SAFETY: slot was Some above.\n    unsafe { core(); }\n}\n";
        assert!(rules("crates/net/src/x.rs", justified, Scope::Full).is_empty());
        assert!(rules("crates/net/src/x.rs", above, Scope::Full).is_empty());
        // Doc `# Safety` headings on unsafe fns count.
        let doc = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must pin the frame.\nunsafe fn g() {}\n";
        assert!(rules("crates/net/src/x.rs", doc, Scope::Full).is_empty());
        // A non-safety comment above does not count.
        let unrelated = "// speeds things up\nfn f() { unsafe { core(); } }\n";
        assert_eq!(
            rules("crates/net/src/x.rs", unrelated, Scope::Full),
            vec!["unsafe-safety-comment"]
        );
        // Attributes between the comment and the item are transparent.
        let with_attr = "// SAFETY: repr(C) layout is pinned.\n#[inline]\nunsafe fn g() {}\n";
        assert!(rules("crates/net/src/x.rs", with_attr, Scope::Full).is_empty());
    }

    #[test]
    fn lossy_cast_audit_scopes_to_numeric_crates() {
        let text = "fn f() { let x = big as u32; }\n";
        assert_eq!(
            rules("crates/bayes/src/x.rs", text, Scope::Full),
            vec!["lossy-cast-audit"]
        );
        assert_eq!(
            rules("crates/core/src/x.rs", text, Scope::Full),
            vec!["lossy-cast-audit"]
        );
        assert!(rules("crates/net/src/x.rs", text, Scope::Full).is_empty());
        // Widening casts pass.
        assert!(rules(
            "crates/core/src/x.rs",
            "fn f() { let x = small as u64; }\n",
            Scope::Full
        )
        .is_empty());
        // Float→index with evidence resolves to the sharper bayes rule.
        assert_eq!(
            rules(
                "crates/bayes/src/x.rs",
                "fn f() { let i = x.floor() as i32; }\n",
                Scope::Full
            ),
            vec!["float-index-cast"]
        );
    }
}
