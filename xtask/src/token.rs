//! A minimal hand-rolled Rust lexer for the lint engine.
//!
//! The PR 1 linter matched substrings on comment-stripped lines, which
//! cannot tell `Instant::now` in code from `Instant::now` in a string
//! literal, loses track of nested `/* /* */ */` comments, and relies on
//! the convention that `#[cfg(test)]` is always the tail of a file. This
//! module lexes real tokens instead: strings (cooked, raw, byte, C),
//! char literals vs lifetimes, nested block comments, doc comments, and
//! numeric literals with suffixes — enough structure for every rule in
//! [`crate::lint`] to match on token sequences rather than text.
//!
//! It is deliberately *not* a full lexer: no macro expansion, no shebang
//! handling, no Unicode identifiers (the workspace is ASCII-identifier
//! only, enforced by rustfmt). Unknown bytes are skipped rather than
//! rejected so a future syntax extension degrades to missed tokens, not
//! a lint crash.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// Identifiers and keywords, including raw identifiers (`r#type`
    /// lexes as an `Ident` with text `type`).
    Ident,
    /// Integer or float literal, suffix included (`1.0f64`).
    Num,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`. Text is the raw source slice, quotes included.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`), label included.
    Lifetime,
    /// Operator or delimiter; two-character operators (`==`, `::`, …)
    /// lex as a single token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub(crate) kind: TokKind,
    pub(crate) text: String,
    pub(crate) line: usize,
}

/// One comment (line, doc, or block) with its line span. The lint engine
/// needs comments for exactly one rule — `unsafe-safety-comment` — so
/// only the safety marker is extracted, not the text.
#[derive(Debug, Clone)]
pub(crate) struct Comment {
    /// 1-based line of the first character.
    pub(crate) start_line: usize,
    /// 1-based line of the last character (equals `start_line` for line
    /// comments; block comments may span many).
    pub(crate) end_line: usize,
    /// Whether the comment carries a safety justification: `SAFETY` in
    /// line/block comments or a `# Safety` doc heading.
    pub(crate) has_safety: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub(crate) struct LexFile {
    /// All tokens outside comments, in source order. Test-scoped tokens
    /// are still present; [`strip_test_scopes`] removes them.
    pub(crate) tokens: Vec<Tok>,
    /// All comments, in source order.
    pub(crate) comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Two-character operators lexed as one token. Order irrelevant: all
/// entries are matched before any single-character fallback.
const TWO_CHAR_PUNCT: [&str; 20] = [
    "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

fn comment_has_safety(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

/// Lexes `text` into tokens and comments.
pub(crate) fn lex(text: &str) -> LexFile {
    let b = text.as_bytes();
    let mut out = LexFile::default();
    let mut i = 0;
    let mut line = 1;

    // Counts newlines in `text[from..to]` — used after consuming a
    // multi-line construct in one step.
    let newlines = |from: usize, to: usize| text[from..to].bytes().filter(|&c| c == b'\n').count();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            // Line comment (incl. `///` and `//!` docs).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    has_safety: comment_has_safety(&text[start..i]),
                });
            }
            // Block comment, nesting tracked.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    has_safety: comment_has_safety(&text[start..i]),
                });
            }
            b'"' => {
                let (end, crossed) = cooked_string_end(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: text[i..end].to_string(),
                    line,
                });
                line += crossed;
                i = end;
            }
            b'\'' => {
                let (tok, end) = char_or_lifetime(text, b, i, line);
                line += newlines(i, end);
                out.tokens.push(tok);
                i = end;
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident = &text[start..i];
                // String prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…".
                let raw_capable = matches!(ident, "r" | "br" | "cr");
                let cooked_prefix = matches!(ident, "b" | "c");
                if (raw_capable || cooked_prefix) && b.get(i) == Some(&b'"') {
                    let end = if raw_capable {
                        raw_string_end(b, i, 0)
                    } else {
                        cooked_string_end(b, i).0
                    };
                    line += newlines(start, end);
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: text[start..end].to_string(),
                        line,
                    });
                    i = end;
                } else if raw_capable && b.get(i) == Some(&b'#') {
                    let mut hashes = 0;
                    while b.get(i + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if b.get(i + hashes) == Some(&b'"') {
                        let end = raw_string_end(b, i + hashes, hashes);
                        let tok_line = line;
                        line += newlines(start, end);
                        out.tokens.push(Tok {
                            kind: TokKind::Str,
                            text: text[start..end].to_string(),
                            line: tok_line,
                        });
                        i = end;
                    } else if ident == "r"
                        && hashes == 1
                        && b.get(i + 1).copied().is_some_and(is_ident_start)
                    {
                        // Raw identifier `r#type`: lex the inner ident.
                        i += 1;
                        let istart = i;
                        while i < b.len() && is_ident_continue(b[i]) {
                            i += 1;
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Ident,
                            text: text[istart..i].to_string(),
                            line,
                        });
                    } else {
                        out.tokens.push(Tok {
                            kind: TokKind::Ident,
                            text: ident.to_string(),
                            line,
                        });
                    }
                } else if ident == "b" && b.get(i) == Some(&b'\'') {
                    // Byte literal b'…'.
                    let (tok, end) = char_or_lifetime(text, b, i, line);
                    line += newlines(i, end);
                    out.tokens.push(Tok {
                        kind: tok.kind,
                        text: text[start..end].to_string(),
                        line: tok.line,
                    });
                    i = end;
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text: ident.to_string(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let end = number_end(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: text[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if c.is_ascii() => {
                let two = b.get(i + 1).map(|&n| [c, n]);
                let matched = two.and_then(|pair| {
                    let s = std::str::from_utf8(&pair).ok()?;
                    TWO_CHAR_PUNCT.contains(&s).then(|| s.to_string())
                });
                if let Some(op) = matched {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: op,
                        line,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
            // Non-ASCII outside strings/comments: skip the byte. The
            // workspace has no Unicode identifiers; anything else here is
            // already a compile error, and the linter must not crash on it.
            _ => i += 1,
        }
    }
    out
}

/// Returns `(end_index_past_closing_quote, newlines_crossed)` for a cooked
/// string starting at the opening quote `b[at] == b'"'`.
fn cooked_string_end(b: &[u8], at: usize) -> (usize, usize) {
    let mut i = at + 1;
    let mut crossed = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, crossed),
            b'\n' => {
                crossed += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), crossed)
}

/// End index (past the final hash) of a raw string whose opening quote is
/// at `b[at]`, terminated by a quote followed by `hashes` `#`s.
fn raw_string_end(b: &[u8], at: usize, hashes: usize) -> usize {
    let mut i = at + 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    b.len()
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at `b[at] == b'\''`.
fn char_or_lifetime(text: &str, b: &[u8], at: usize, line: usize) -> (Tok, usize) {
    let next = b.get(at + 1).copied();
    match next {
        // Escape sequence: definitely a char literal.
        Some(b'\\') => {
            let mut i = at + 1;
            while i < b.len() && b[i] != b'\'' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            let end = (i + 1).min(b.len());
            (
                Tok {
                    kind: TokKind::Char,
                    text: text[at..end].to_string(),
                    line,
                },
                end,
            )
        }
        // `'a'` is a char literal; `'a` followed by anything else is a
        // lifetime (or loop label — same token shape).
        Some(c) if is_ident_start(c) => {
            if b.get(at + 2) == Some(&b'\'') {
                (
                    Tok {
                        kind: TokKind::Char,
                        text: text[at..at + 3].to_string(),
                        line,
                    },
                    at + 3,
                )
            } else {
                let mut i = at + 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                (
                    Tok {
                        kind: TokKind::Lifetime,
                        text: text[at..i].to_string(),
                        line,
                    },
                    i,
                )
            }
        }
        // Non-identifier char payload (`'.'`, `'∞'`): scan for the close
        // quote within the literal's few bytes.
        Some(_) => {
            let mut i = at + 1;
            while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                i += 1;
            }
            let end = (i + 1).min(b.len());
            (
                Tok {
                    kind: TokKind::Char,
                    text: text[at..end].to_string(),
                    line,
                },
                end,
            )
        }
        None => (
            Tok {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            },
            at + 1,
        ),
    }
}

/// End index of a numeric literal starting at a digit. Handles `0x…`
/// bases, `1_000.5`, `2.`, `1.5e-3`, and type suffixes (`1.0f64`), and
/// stops before `.` when it begins a range (`1..n`) or a method call
/// (`1.max(2)`).
fn number_end(b: &[u8], at: usize) -> usize {
    let mut i = at;
    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')) {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i < b.len() && b[i] == b'.' {
        let after = b.get(i + 1).copied();
        let is_range = after == Some(b'.');
        let is_method = after.is_some_and(is_ident_start);
        if !is_range && !is_method {
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    if i < b.len() && matches!(b[i], b'e' | b'E') {
        let mut j = i + 1;
        if matches!(b.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if b.get(j).copied().is_some_and(|c| c.is_ascii_digit()) {
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize, …).
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    i
}

/// `true` if a [`TokKind::Num`] token is a float literal: it has a
/// fractional dot, a float suffix, or a decimal exponent.
pub(crate) fn is_float_lit(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|c| matches!(c, b'e' | b'E'))
}

/// Removes tokens inside test-only scopes, structurally:
///
/// - an item annotated `#[cfg(test)]` (or `#[cfg(any(test, …))]` — any
///   `cfg` attribute mentioning `test` outside a `not(…)`), including any
///   further attributes between the `cfg` and the item;
/// - a `mod tests { … }` item, the workspace's unit-test convention;
/// - everything after an inner `#![cfg(test)]`.
///
/// "Item" is approximated as: tokens up to the first `;` at bracket depth
/// zero, or a `{ … }` group balanced to its close. That covers `fn`,
/// `mod`, `impl`, `use`, `static`, and expression statements — everything
/// the rules could otherwise misfire on.
pub(crate) fn strip_test_scopes(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        // `#` `!`? `[` … `]` — an attribute.
        if tokens[i].text == "#" && tokens[i].kind == TokKind::Punct {
            let inner = tokens.get(i + 1).is_some_and(|t| t.text == "!");
            let open = i + 1 + usize::from(inner);
            if tokens.get(open).is_some_and(|t| t.text == "[") {
                let close = matching_bracket(&tokens, open);
                if attr_is_cfg_test(&tokens[open + 1..close]) {
                    if inner {
                        // `#![cfg(test)]`: the whole remaining scope is
                        // test-only.
                        return out;
                    }
                    i = skip_attrs_and_item(&tokens, close + 1);
                    continue;
                }
            }
        }
        // `mod tests { … }` without an explicit cfg.
        if tokens[i].kind == TokKind::Ident
            && tokens[i].text == "mod"
            && tokens.get(i + 1).is_some_and(|t| t.text == "tests")
        {
            i = skip_attrs_and_item(&tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// `true` if the attribute body (tokens between `[` and `]`) is a `cfg`
/// mentioning `test`. Conservatively keeps scanning when a `not` appears
/// anywhere — `#[cfg(not(test))]` is live code.
fn attr_is_cfg_test(body: &[Tok]) -> bool {
    if body.first().map(|t| t.text.as_str()) != Some("cfg") {
        return false;
    }
    let mut saw_test = false;
    for t in body {
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "not" => return false,
                "test" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_test
}

/// Index of the `]`/`}`/`)` matching the opener at `open`.
pub(crate) fn matching_bracket(tokens: &[Tok], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len() - 1
}

/// Skips any further `#[…]` attribute groups starting at `from`, then one
/// item (to a top-level `;` or through a balanced `{ … }`). Returns the
/// index of the first token after the item.
fn skip_attrs_and_item(tokens: &[Tok], from: usize) -> usize {
    let mut i = from;
    while tokens.get(i).is_some_and(|t| t.text == "#")
        && tokens.get(i + 1).is_some_and(|t| t.text == "[")
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" => return matching_bracket(tokens, i) + 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn surviving_idents(src: &str) -> Vec<String> {
        strip_test_scopes(lex(src).tokens)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // The false-positive class the line scanner could not handle:
        // rule trigger text inside a string literal.
        let src = r##"let msg = "never call Instant::now or .unwrap() here";"##;
        assert!(!idents(src)
            .iter()
            .any(|t| t == "Instant" || t == "unwrap" || t == "now"));
    }

    #[test]
    fn raw_strings_lex_as_one_token() {
        let src = "let re = r#\"quote \" inside, and thread_rng too\"#; next";
        let lexed = lex(src);
        let strs: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("thread_rng"));
        assert!(idents(src).contains(&"next".to_string()));
        assert!(!idents(src).contains(&"thread_rng".to_string()));
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_strings() {
        let src = r####"let a = r##"one "# still inside"##; let b = br#"bytes"#; tail"####;
        let toks = lex(src);
        let strs = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 2);
        assert!(idents(src).contains(&"tail".to_string()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        // `/* /* */ */` — the inner close must not end the outer comment.
        let src = "before /* outer /* inner */ still comment .unwrap() */ after";
        let names = idents(src);
        assert_eq!(names, vec!["before", "after"]);
    }

    #[test]
    fn block_comment_line_spans_are_tracked() {
        let src = "a\n/* one\ntwo\nthree */\nb";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].start_line, 2);
        assert_eq!(lexed.comments[0].end_line, 4);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.text == "b")
            .expect("b lexed");
        assert_eq!(b.line, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn char_escapes_and_quote_literals() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}';";
        let chars: Vec<String> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], r"'\''");
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = lex("let a = 1.5e-3f64; for i in 0..10 { x[i .max(2)]; } 0xFFu8");
        let nums: Vec<String> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert!(nums.contains(&"1.5e-3f64".to_string()));
        assert!(nums.contains(&"0".to_string()) && nums.contains(&"10".to_string()));
        assert!(nums.contains(&"0xFFu8".to_string()));
        assert!(is_float_lit("1.5e-3f64"));
        assert!(is_float_lit("2."));
        assert!(is_float_lit("1e3"));
        assert!(!is_float_lit("10"));
        assert!(!is_float_lit("0xFFu8"));
    }

    #[test]
    fn two_char_operators_lex_whole() {
        let ops: Vec<String> = lex("a == b != c => d :: e .. f")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, vec!["==", "!=", "=>", "::", ".."]);
    }

    #[test]
    fn doc_comments_are_comments_not_tokens() {
        let src = "/// Instantiates things via Instant::now\nfn g() {}";
        let names = idents(src);
        assert_eq!(names, vec!["fn", "g"]);
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn safety_markers_are_detected() {
        assert!(lex("// SAFETY: latch drained below\n").comments[0].has_safety);
        assert!(lex("/* SAFETY:\n multi-line */").comments[0].has_safety);
        assert!(lex("/// # Safety\n").comments[0].has_safety);
        assert!(!lex("// safe enough, probably\n").comments[0].has_safety);
    }

    #[test]
    fn cfg_test_items_are_stripped_structurally() {
        // A cfg(test) item in the *middle* of a file, followed by live
        // code — the tail-of-file heuristic this replaces missed the
        // violation in `late`.
        let src = "\
fn early() { ok(); }\n\
#[cfg(test)]\n\
fn helper() { test_only.unwrap(); }\n\
fn late() { flagged.unwrap(); }\n";
        let names = surviving_idents(src);
        assert!(names.contains(&"flagged".to_string()));
        assert!(names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"test_only".to_string()));
        assert!(!names.contains(&"helper".to_string()));
    }

    #[test]
    fn cfg_test_mod_with_inner_braces_is_skipped_whole() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn nested() { if x { y { } } }\n\
    struct S;\n\
}\n\
fn live() {}\n";
        let names = surviving_idents(src);
        assert_eq!(names, vec!["fn", "live"]);
    }

    #[test]
    fn mod_tests_without_cfg_is_also_skipped() {
        let src = "mod tests { fn t() { x.unwrap(); } }\nfn live() {}";
        let names = surviving_idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { flagged.unwrap(); }";
        let names = surviving_idents(src);
        assert!(names.contains(&"unwrap".to_string()));
    }

    #[test]
    fn cfg_any_test_is_stripped() {
        let src =
            "#[cfg(any(test, feature = \"slow\"))]\nfn helper() { h.unwrap(); }\nfn live() {}";
        let names = surviving_idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_attr_is_not_a_test_scope() {
        let src = "#[cfg_attr(feature = \"serde\", derive(Serialize))]\nstruct S { x: f64 }";
        let names = surviving_idents(src);
        assert!(names.contains(&"struct".to_string()));
    }

    #[test]
    fn attributes_between_cfg_test_and_item_are_skipped_too() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { h.unwrap(); }\nfn live() {}";
        let names = surviving_idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_test_use_statement_consumes_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let names = surviving_idents(src);
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn inner_cfg_test_truncates_the_file() {
        let src = "#![cfg(test)]\nfn everything_here_is_test() { x.unwrap(); }";
        assert!(surviving_idents(src).is_empty());
    }

    #[test]
    fn item_with_semicolons_inside_brackets_is_one_item() {
        // `[u8; 4]` — the `;` at bracket depth 1 must not end the item.
        let src = "#[cfg(test)]\nstatic BUF: [u8; 4] = [0; 4];\nfn live() {}";
        let names = surviving_idents(src);
        assert_eq!(names, vec!["fn", "live"]);
    }
}
